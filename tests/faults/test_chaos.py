"""Unit tests for the process-level chaos primitives."""

import pytest

from repro.faults.chaos import (
    KILL_MODES,
    WORKER_FAILURE_MODES,
    ChaosJournal,
    FlakySetup,
    flip_byte,
    truncate_tail,
)
from repro.sim.simulator import SimulationResult


def flaky(tmp_path, **kwargs):
    kwargs.setdefault("horizon", 200.0)
    kwargs.setdefault("scratch_dir", str(tmp_path / "scratch"))
    return FlakySetup(**kwargs)


class TestFlakySetup:
    def test_mode_validated(self, tmp_path):
        with pytest.raises(ValueError, match="failure mode"):
            flaky(tmp_path, mode="explode")
        for mode in WORKER_FAILURE_MODES:
            flaky(tmp_path, mode=mode)

    def test_needs_scratch_dir(self):
        setup = FlakySetup(horizon=200.0)
        with pytest.raises(ValueError, match="scratch_dir"):
            setup.run("edf", 0.4, 50.0, 0)

    def test_attempts_counted_across_instances(self, tmp_path):
        setup = flaky(tmp_path, fail_attempts=2)
        assert setup.attempts_so_far("edf", 50.0, 0) == 0
        for attempt in (1, 2):
            with pytest.raises(RuntimeError, match=f"attempt {attempt}"):
                setup.run("edf", 0.4, 50.0, 0)
        # A fresh instance (like a fresh worker process) sees the same
        # count through the marker files and is healthy now.
        again = flaky(tmp_path, fail_attempts=2)
        assert again.attempts_so_far("edf", 50.0, 0) == 2
        result = again.run("edf", 0.4, 50.0, 0)
        assert isinstance(result, SimulationResult)

    def test_cells_fail_independently(self, tmp_path):
        setup = flaky(tmp_path, fail_attempts=1)
        with pytest.raises(RuntimeError):
            setup.run("edf", 0.4, 50.0, 0)
        # Different seed = different marker: still has its failure due.
        with pytest.raises(RuntimeError):
            setup.run("edf", 0.4, 50.0, 1)
        assert setup.attempts_so_far("edf", 50.0, 0) == 1
        assert setup.attempts_so_far("edf", 50.0, 1) == 1

    def test_healthy_run_matches_paper_setup(self, tmp_path):
        from repro.experiments.common import PaperSetup
        from repro.runtime.journal import result_to_payload

        setup = flaky(tmp_path, fail_attempts=0)
        plain = PaperSetup(horizon=200.0)
        chaotic = setup.run("edf", 0.4, 50.0, 0)
        reference = plain.run("edf", 0.4, 50.0, 0)
        # Bit-exact: a FlakySetup past its failure budget IS the paper
        # setup (payload comparison keeps the exactness intent visible).
        assert result_to_payload(chaotic) == result_to_payload(reference)


class TestChaosJournal:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="kill_record"):
            ChaosJournal(tmp_path / "j.journal", kill_record=0)
        with pytest.raises(ValueError, match="kill mode"):
            ChaosJournal(tmp_path / "j.journal", kill_record=1, kill_mode="later")
        for mode in KILL_MODES:
            ChaosJournal(tmp_path / f"{mode}.journal", 1, mode).close()

    def test_appends_before_armed_record_are_normal(self, tmp_path):
        # Arming record 99 means the whole test-sized sweep survives.
        from repro.runtime.journal import journal_key
        from tests.runtime.test_journal import make_result, make_spec

        journal = ChaosJournal(tmp_path / "j.journal", kill_record=99)
        journal.append_result(journal_key(make_spec()), make_result())
        assert len(journal) == 1
        journal.close()


class TestCorruptionHelpers:
    def test_truncate_tail(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        truncate_tail(path, 4)
        assert path.read_bytes() == b"012345"
        truncate_tail(path, 100)
        assert path.read_bytes() == b""
        with pytest.raises(ValueError, match="drop_bytes"):
            truncate_tail(path, -1)

    def test_flip_byte(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        flip_byte(path, 1)
        data = path.read_bytes()
        assert data[:9] == b"012345678"
        assert data[9] == ord("9") ^ 0xFF
        with pytest.raises(ValueError, match="offset_from_end"):
            flip_byte(path, 0)
        with pytest.raises(ValueError, match="offset_from_end"):
            flip_byte(path, 11)
