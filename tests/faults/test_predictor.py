"""Tests for the prediction-side fault injector."""

import pytest

from repro.energy.predictor import MeanPowerPredictor, ProfilePredictor
from repro.faults import BiasedPredictor


class TestBias:
    def test_gain_scales_prediction(self):
        inner = MeanPowerPredictor(initial_power=2.0)
        biased = BiasedPredictor(inner, gain=1.5)
        assert biased.predict_energy(0.0, 10.0) == pytest.approx(30.0)

    def test_offset_adds_power_times_duration(self):
        inner = MeanPowerPredictor(initial_power=2.0)
        biased = BiasedPredictor(inner, offset_power=0.5)
        assert biased.predict_energy(0.0, 4.0) == pytest.approx(8.0 + 2.0)

    def test_pessimistic_bias_clamped_at_zero(self):
        inner = MeanPowerPredictor(initial_power=1.0)
        biased = BiasedPredictor(inner, gain=0.5, offset_power=-10.0)
        assert biased.predict_energy(0.0, 5.0) == 0.0

    def test_identity_is_transparent(self):
        inner = MeanPowerPredictor(initial_power=1.7)
        biased = BiasedPredictor(inner)
        assert biased.predict_energy(2.0, 9.0) == pytest.approx(
            inner.predict_energy(2.0, 9.0)
        )


class TestPassthrough:
    def test_observations_train_the_inner_predictor(self):
        inner = MeanPowerPredictor()
        biased = BiasedPredictor(inner, gain=2.0)
        biased.observe(0.0, 10.0, 30.0)
        # The inner predictor learned from the true harvest...
        learned = inner.predict_energy(0.0, 1.0)
        assert learned > 0.0
        # ...and the bias stays systematic on top of whatever it learned.
        assert biased.predict_energy(0.0, 1.0) == pytest.approx(2.0 * learned)

    def test_reset_propagates(self):
        inner = ProfilePredictor()
        biased = BiasedPredictor(inner)
        biased.observe(0.0, 1.0, 5.0)
        biased.reset()
        assert inner.predict_energy(0.0, 1.0) == biased.predict_energy(0.0, 1.0)


class TestValidation:
    def test_bad_gain(self):
        with pytest.raises(ValueError, match="gain"):
            BiasedPredictor(MeanPowerPredictor(), gain=-0.1)

    def test_bad_offset(self):
        with pytest.raises(ValueError, match="offset_power"):
            BiasedPredictor(MeanPowerPredictor(), offset_power=float("nan"))

    def test_introspection(self):
        inner = MeanPowerPredictor()
        biased = BiasedPredictor(inner, gain=1.2, offset_power=-0.3)
        assert biased.inner is inner
        assert biased.gain == 1.2
        assert biased.offset_power == -0.3
        assert "BiasedPredictor" in repr(biased)
