"""Tests for the workload-side fault injector (WCET overruns)."""

import pytest

from repro.cpu.presets import xscale_pxa
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.faults import OverrunWorkload
from repro.sched.edf import GreedyEdfScheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask, TaskSet


def simple_taskset():
    return TaskSet(
        [
            PeriodicTask(period=10.0, wcet=2.0, name="t1"),
            PeriodicTask(period=15.0, wcet=3.0, name="t2"),
        ]
    )


class TestOverrunJobs:
    def test_certain_overrun_stretches_every_job(self):
        wl = OverrunWorkload(
            simple_taskset(), seed=0, probability=1.0,
            min_stretch=1.5, max_stretch=2.0,
        )
        base = simple_taskset().jobs(60.0)
        jobs = wl.jobs(60.0)
        assert len(jobs) == len(base)
        for job, ref in zip(jobs, base):
            assert job.actual_work >= 1.5 * ref.actual_work - 1e-12
            assert job.actual_work <= 2.0 * ref.actual_work + 1e-12
            assert job.overruns_wcet
            assert job.wcet == ref.wcet  # the scheduler's view is unchanged

    def test_zero_probability_is_transparent(self):
        wl = OverrunWorkload(simple_taskset(), seed=0, probability=0.0)
        base = simple_taskset().jobs(60.0)
        jobs = wl.jobs(60.0)
        assert [j.actual_work for j in jobs] == [j.actual_work for j in base]
        assert not any(j.overruns_wcet for j in jobs)

    def test_same_seed_same_overruns(self):
        make = lambda: OverrunWorkload(simple_taskset(), seed=11, probability=0.5)
        a = [j.actual_work for j in make().jobs(300.0)]
        b = [j.actual_work for j in make().jobs(300.0)]
        assert a == b

    def test_different_seed_differs(self):
        a = OverrunWorkload(simple_taskset(), seed=1, probability=0.5).jobs(300.0)
        b = OverrunWorkload(simple_taskset(), seed=2, probability=0.5).jobs(300.0)
        assert [j.actual_work for j in a] != [j.actual_work for j in b]

    def test_partial_probability_stretches_a_subset(self):
        wl = OverrunWorkload(simple_taskset(), seed=3, probability=0.5)
        jobs = wl.jobs(600.0)
        overrun = [j for j in jobs if j.overruns_wcet]
        assert 0 < len(overrun) < len(jobs)


class TestJobOverrunGate:
    def test_plain_job_still_rejects_overruns(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t")
        with pytest.raises(ValueError, match="actual work"):
            Job(task, 0.0, 10.0, 2.0, actual_work=3.0)

    def test_opt_in_overrun_is_accepted(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t")
        job = Job(task, 0.0, 10.0, 2.0, actual_work=3.0, allow_overrun=True)
        assert job.actual_work == 3.0
        assert job.overruns_wcet

    def test_within_wcet_job_does_not_flag(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t")
        job = Job(task, 0.0, 10.0, 2.0, actual_work=2.0, allow_overrun=True)
        assert not job.overruns_wcet


class TestSimulatorIntegration:
    def test_simulator_executes_overrunning_jobs(self):
        wl = OverrunWorkload(
            simple_taskset(), seed=0, probability=1.0,
            min_stretch=1.5, max_stretch=1.5,
        )
        sim = HarvestingRtSimulator(
            taskset=wl,
            source=ConstantSource(5.0),
            storage=IdealStorage(float("inf")),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            config=SimulationConfig(horizon=100.0, watchdog=True),
        )
        result = sim.run()
        assert result.completed_count > 0
        # With ample energy the stretched demand still fits the deadlines
        # of this loose task set: nothing missed, everything executed.
        assert result.missed_count == 0


class TestValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            OverrunWorkload(simple_taskset(), probability=1.5)

    def test_bad_stretch(self):
        with pytest.raises(ValueError, match="min_stretch"):
            OverrunWorkload(simple_taskset(), min_stretch=0.9)
        with pytest.raises(ValueError, match="max_stretch"):
            OverrunWorkload(simple_taskset(), min_stretch=1.5, max_stretch=1.2)

    def test_introspection(self):
        wl = OverrunWorkload(
            simple_taskset(), seed=4, probability=0.2,
            min_stretch=1.1, max_stretch=1.3,
        )
        assert wl.seed == 4
        assert wl.probability == 0.2
        assert wl.stretch_range == (1.1, 1.3)
        assert len(wl.tasks) == 2
        assert "OverrunWorkload" in repr(wl)
