"""Contract tests for the public package surface."""

import importlib
import inspect

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_no_private_leaks(self):
        assert not any(name.startswith("_") for name in repro.__all__)


SUBPACKAGES = (
    "repro.analysis",
    "repro.core",
    "repro.cpu",
    "repro.energy",
    "repro.experiments",
    "repro.faults",
    "repro.sched",
    "repro.sim",
    "repro.tasks",
)


class TestSubpackageApi:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), (
                    f"{module_name}.{name} lacks a docstring"
                )

    def test_schedulers_expose_unique_names(self):
        from repro.sched.registry import available_schedulers, make_scheduler
        from repro.cpu.presets import xscale_pxa

        scale = xscale_pxa()
        names = available_schedulers()
        assert len(set(names)) == len(names)
        for name in names:
            assert make_scheduler(name, scale).name == name
