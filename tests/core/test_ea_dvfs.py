"""Unit tests for the EA-DVFS scheduler's decision logic."""

import math

import pytest

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sched.base import EnergyOutlook
from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import AperiodicTask


def make_ready(*specs):
    """Build a ready queue from (release, deadline, wcet, name) specs."""
    queue = EdfReadyQueue()
    for release, deadline, wcet, name in specs:
        task = AperiodicTask(
            arrival=release, relative_deadline=deadline - release,
            wcet=wcet, name=name,
        )
        job = Job(task=task, release=release, absolute_deadline=deadline,
                  wcet=wcet)
        job.mark_released()
        queue.push(job)
    return queue


def outlook(stored, capacity=1000.0, harvest=0.0):
    source = ConstantSource(harvest)
    storage = IdealStorage(capacity=capacity, initial=stored)
    return EnergyOutlook(storage, OraclePredictor(source))


class TestIdleBehavior:
    def test_empty_queue_idles_forever(self, two_speed):
        scheduler = EaDvfsScheduler(two_speed)
        decision = scheduler.decide(0.0, EdfReadyQueue(), outlook(10.0))
        assert decision.is_idle
        assert decision.reconsider_at == math.inf

    def test_scarce_energy_idles_until_s1(self, two_speed):
        scheduler = EaDvfsScheduler(two_speed)
        ready = make_ready((0.0, 16.0, 4.0, "tau1"))
        # E_avail = 24 + 0.5 * 16 = 32 -> s1 = 4 (section 2 numbers).
        decision = scheduler.decide(
            0.0, ready, outlook(24.0, harvest=0.5)
        )
        assert decision.is_idle
        assert decision.reconsider_at == pytest.approx(4.0)


class TestDispatchBehavior:
    def test_earliest_deadline_selected(self, xscale):
        scheduler = EaDvfsScheduler(xscale)
        ready = make_ready(
            (0.0, 50.0, 1.0, "late"),
            (0.0, 20.0, 1.0, "early"),
        )
        decision = scheduler.decide(0.0, ready, outlook(1000.0))
        assert decision.job.task.name == "early"

    def test_plentiful_energy_runs_full_speed(self, xscale):
        scheduler = EaDvfsScheduler(xscale)
        ready = make_ready((0.0, 20.0, 1.0, "t"))
        decision = scheduler.decide(0.0, ready, outlook(1000.0))
        assert decision.level.speed == 1.0
        assert decision.switch_to_max_at is None

    def test_scarce_energy_slow_phase_with_switch(self, two_speed):
        """Section 2 at t = s1: run at S=0.5 with the switch armed at s2."""
        scheduler = EaDvfsScheduler(two_speed)
        ready = make_ready((0.0, 16.0, 4.0, "tau1"))
        # At t=4 with exact prediction: E_avail = 26 + 0.5*12 = 32.
        decision = scheduler.decide(4.0, ready, outlook(26.0, harvest=0.5))
        assert not decision.is_idle
        assert decision.level.speed == pytest.approx(0.5)
        assert decision.switch_to_max_at == pytest.approx(12.0)

    def test_unreachable_deadline_best_effort_full_speed(self, xscale):
        # The job was feasible at release but the clock has advanced past
        # the last feasible start (window 2 < remaining work 3).
        scheduler = EaDvfsScheduler(xscale)
        ready = make_ready((0.0, 10.0, 3.0, "doomed"))
        decision = scheduler.decide(8.0, ready, outlook(1000.0))
        assert decision.level.speed == 1.0


class TestFullStorageFastPath:
    def test_full_storage_forces_full_speed(self, two_speed):
        """Section 4.1: a full storage means slow-down only wastes harvest."""
        scheduler = EaDvfsScheduler(two_speed)
        ready = make_ready((0.0, 160.0, 4.0, "t"))
        # Storage full but tiny: without the fast path the slow-down rule
        # would engage (E_avail = 2 + 80 = 82 < P_max * window = 1280).
        decision = scheduler.decide(
            0.0, ready, outlook(2.0, capacity=2.0, harvest=0.5)
        )
        assert decision.level.speed == 1.0
        assert decision.switch_to_max_at is None

    def test_fast_path_can_be_disabled(self, two_speed):
        scheduler = EaDvfsScheduler(two_speed, full_storage_fast_path=False)
        ready = make_ready((0.0, 160.0, 4.0, "t"))
        decision = scheduler.decide(
            0.0, ready, outlook(2.0, capacity=2.0, harvest=0.5)
        )
        assert decision.is_idle or decision.level.speed < 1.0


class TestInfiniteStorage:
    def test_behaves_like_edf(self, xscale):
        """Section 4.3: infinite storage -> immediate full-speed dispatch."""
        scheduler = EaDvfsScheduler(xscale)
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        view = EnergyOutlook(storage, OraclePredictor(ConstantSource(0.0)))
        ready = make_ready((0.0, 20.0, 5.0, "t"))
        decision = scheduler.decide(0.0, ready, view)
        assert decision.job.task.name == "t"
        assert decision.level.speed == 1.0
        assert decision.switch_to_max_at is None
