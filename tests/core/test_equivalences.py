"""Scheduler equivalence properties claimed by the paper.

Section 4.3: "when the energy storage capacity is infinite, the proposed
energy aware DVFS algorithm is reduced to EDF"; and with sufficient energy
EA-DVFS behaves like LSA (both dispatch at full speed immediately).
"""

import math

import pytest

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import OraclePredictor
from repro.energy.source import SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.tasks.workload import generate_paper_taskset


def run_with(scheduler_cls, storage, seed=5, utilization=0.6, horizon=1500.0):
    scale = xscale_pxa()
    source = SolarStochasticSource(seed=seed)
    taskset = generate_paper_taskset(
        n_tasks=4, utilization=utilization, seed=seed,
        mean_harvest_power=source.mean_power(), max_power=scale.max_power,
    )
    sim = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=storage,
        scheduler=scheduler_cls(scale),
        predictor=OraclePredictor(source),
        config=SimulationConfig(horizon=horizon),
    )
    return sim.run()


def job_schedule(result):
    """Comparable footprint: (name, start, completion) per job."""
    return [
        (j.name, j.first_start_time, j.completion_time) for j in result.jobs
    ]


class TestInfiniteStorageDegeneratesToEdf:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_ea_dvfs_equals_edf_jobwise(self, seed):
        infinite = lambda: IdealStorage(capacity=math.inf, initial=math.inf)
        ea = run_with(EaDvfsScheduler, infinite(), seed=seed)
        edf = run_with(GreedyEdfScheduler, infinite(), seed=seed)
        assert job_schedule(ea) == job_schedule(edf)
        assert ea.missed_count == edf.missed_count == 0

    def test_ea_dvfs_runs_only_at_full_speed(self):
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        result = run_with(EaDvfsScheduler, storage)
        profile = result.busy_time_profile
        slow_time = sum(t for s, t in profile.items() if s < 1.0)
        assert slow_time == 0.0
        assert profile[1.0] > 0.0

    def test_lsa_also_degenerates(self):
        infinite = lambda: IdealStorage(capacity=math.inf, initial=math.inf)
        lsa = run_with(LazyScheduler, infinite())
        edf = run_with(GreedyEdfScheduler, infinite())
        assert job_schedule(lsa) == job_schedule(edf)


class TestAbundantEnergyEquivalence:
    def test_ea_dvfs_matches_lsa_with_huge_storage(self):
        """A very large (finite) full storage keeps both policies in the
        'sufficient energy' regime for the whole run."""
        huge = 1e9
        ea = run_with(EaDvfsScheduler, IdealStorage(capacity=huge), seed=7)
        lsa = run_with(LazyScheduler, IdealStorage(capacity=huge), seed=7)
        assert job_schedule(ea) == job_schedule(lsa)
        assert ea.miss_rate == lsa.miss_rate == 0.0


class TestDominanceUnderScarcity:
    @pytest.mark.parametrize("capacity", [25.0, 50.0, 100.0])
    def test_ea_dvfs_never_worse_than_lsa_on_average(self, capacity):
        """Pooled over several seeds at U=0.4, EA-DVFS misses at most as
        often as LSA (the paper's headline result)."""
        ea_misses = lsa_misses = judged = 0
        for seed in range(5):
            ea = run_with(
                EaDvfsScheduler, IdealStorage(capacity=capacity),
                seed=seed, utilization=0.4, horizon=3000.0,
            )
            lsa = run_with(
                LazyScheduler, IdealStorage(capacity=capacity),
                seed=seed, utilization=0.4, horizon=3000.0,
            )
            ea_misses += ea.missed_count
            lsa_misses += lsa.missed_count
            judged += ea.judged_count
        assert judged > 0
        assert ea_misses <= lsa_misses
