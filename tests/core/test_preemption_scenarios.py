"""Deterministic preemption scenarios for EA-DVFS.

The paper defines the s1/s2 computations per task at release; the
reproduction re-evaluates them at every scheduling point with the
*remaining* work (documented generalization).  These hand-computable
scenarios pin down what happens when an urgent job lands in the middle
of a committed slow phase.
"""

import pytest

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.presets import motivational_example_scale
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sim.schedule_view import schedule_intervals
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.sim.tracing import TraceKind
from repro.tasks.task import AperiodicTask, TaskSet

TRACE_KINDS = (
    TraceKind.JOB_START,
    TraceKind.JOB_PREEMPT,
    TraceKind.JOB_COMPLETE,
    TraceKind.JOB_MISS,
    TraceKind.FREQ_CHANGE,
    TraceKind.STALL,
)


def run_scenario(tasks, initial=24.0, harvest=0.5, capacity=100.0,
                 horizon=40.0):
    scale = motivational_example_scale()
    source = ConstantSource(harvest)
    simulator = HarvestingRtSimulator(
        taskset=TaskSet(tasks),
        source=source,
        storage=IdealStorage(capacity=capacity, initial=initial),
        scheduler=EaDvfsScheduler(scale),
        predictor=OraclePredictor(source),
        config=SimulationConfig(horizon=horizon, trace_kinds=TRACE_KINDS),
    )
    return simulator.run()


class TestMidStretchPreemption:
    def test_urgent_job_preempts_slow_phase(self):
        """A tight-deadline job released mid-stretch runs immediately at
        full speed (its own window has no slack), then the long job
        resumes and still meets its deadline."""
        result = run_scenario(
            [
                AperiodicTask(0.0, 16.0, 4.0, name="long"),
                # Released at 6 (inside long's [4, 12] slow phase) with
                # only 1.5x its work as window: full speed required.
                AperiodicTask(6.0, 1.5, 1.5, name="urgent"),
            ],
            initial=50.0,  # plenty: the test isolates the timing logic
        )
        assert result.missed_count == 0
        by_name = {j.task.name: j for j in result.jobs}
        urgent = by_name["urgent"]
        assert urgent.first_start_time == pytest.approx(6.0)
        assert urgent.completion_time == pytest.approx(7.5)
        long_job = by_name["long"]
        assert long_job.completion_time is not None
        assert long_job.completion_time <= 16.0 + 1e-9
        # The preemption is visible in the trace.
        preempts = result.trace.by_kind(TraceKind.JOB_PREEMPT)
        assert any(r["job"] == "long#0" for r in preempts)

    def test_resumed_job_replans_with_remaining_work(self):
        """After preemption, the long job's new plan uses its *remaining*
        work: the slow phase still fits, so some execution happens below
        full speed both before and after the urgent job."""
        # Budget check: stretched long (8 * 8/3 = 21.3) plus full-speed
        # urgent (1.5 * 8 = 12) needs ~33.3; with initial 28 the available
        # energy through t=16 is 36, enough for both (24 as in Figure 1
        # would correctly sacrifice the long job).
        result = run_scenario(
            [
                AperiodicTask(0.0, 16.0, 4.0, name="long"),
                AperiodicTask(6.0, 1.5, 1.5, name="urgent"),
            ],
            initial=28.0,
        )
        assert result.missed_count == 0
        intervals = schedule_intervals(result.trace, end_time=40.0)
        long_speeds = {
            round(i.speed, 3) for i in intervals if i.job == "long#0"
        }
        assert 0.5 in long_speeds  # stretched execution occurred
        urgent_intervals = [i for i in intervals if i.job == "urgent#0"]
        assert all(i.speed == 1.0 for i in urgent_intervals)

    def test_two_urgent_jobs_back_to_back(self):
        """EDF order among equal-release urgent jobs is by deadline."""
        result = run_scenario(
            [
                AperiodicTask(0.0, 30.0, 3.0, name="long"),
                AperiodicTask(5.0, 4.0, 1.0, name="u1"),
                AperiodicTask(5.0, 8.0, 1.0, name="u2"),
            ],
            initial=60.0,
        )
        assert result.missed_count == 0
        by_name = {j.task.name: j for j in result.jobs}
        assert by_name["u1"].completion_time < by_name["u2"].completion_time

    def test_energy_scarce_preemption_may_sacrifice_the_long_job(self):
        """When the urgent job burns the shared budget, the long job may
        miss — but the urgent one must not."""
        result = run_scenario(
            [
                AperiodicTask(0.0, 16.0, 4.0, name="long"),
                AperiodicTask(6.0, 1.5, 1.5, name="urgent"),
            ],
            initial=14.0,  # not enough for both
            harvest=0.2,
        )
        by_name = {j.task.name: j for j in result.jobs}
        urgent = by_name["urgent"]
        assert urgent.completion_time is not None
        assert urgent.completion_time <= urgent.absolute_deadline + 1e-9
