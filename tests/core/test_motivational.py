"""End-to-end reproduction of the paper's worked examples.

These tests pin the exact numbers of section 2 (Figure 1) and section 4.3
(Figure 3) as executed by the real simulator — they are the strongest
correctness anchors in the suite.
"""

import pytest

from repro.experiments.motivation import (
    run_motivational_example,
    run_stretch_example,
)


class TestFigure1Example:
    """tau1 = (0, 16, 4), tau2 = (5, 16, 1.5); E0 = 24, PS = 0.5, Pmax = 8."""

    def test_lsa_starts_tau1_at_12_and_finishes_at_16(self):
        """Paper: 'the system starts running task tau1 at time 12 ... and
        finishes it at time 16. The system depletes all energy exactly at
        time 16.'"""
        outcome = run_motivational_example("lsa")
        tau1 = next(j for j in outcome.result.jobs if j.task.name == "tau1")
        assert tau1.first_start_time == pytest.approx(12.0)
        assert tau1.completion_time == pytest.approx(16.0)

    def test_lsa_misses_tau2(self):
        """Paper: 'the deadline of task tau2 is violated because of the
        energy shortage.'"""
        outcome = run_motivational_example("lsa")
        assert not outcome.tau2_met
        assert outcome.result.missed_count == 1

    def test_ea_dvfs_meets_both_deadlines(self):
        """Paper: 'This time the system has enough available energy to
        finish task tau2 by its deadline.'"""
        outcome = run_motivational_example("ea-dvfs")
        assert outcome.result.missed_count == 0
        assert outcome.tau2_met

    def test_ea_dvfs_stretches_tau1(self):
        """EA-DVFS idles until s1 = 4 and completes tau1 exactly at s2 = 12
        (the slow phase does all 4 work units at half speed)."""
        outcome = run_motivational_example("ea-dvfs")
        tau1 = next(j for j in outcome.result.jobs if j.task.name == "tau1")
        assert tau1.first_start_time == pytest.approx(4.0)
        assert tau1.completion_time == pytest.approx(12.0)

    def test_ea_dvfs_tau1_uses_less_energy_than_lsa(self):
        """Slow execution costs 4/0.5 * 8/3 = 21.33 < 32 = 4 * 8."""
        ea = run_motivational_example("ea-dvfs")
        lsa = run_motivational_example("lsa")
        ea_tau1 = next(j for j in ea.result.jobs if j.task.name == "tau1")
        lsa_tau1 = next(j for j in lsa.result.jobs if j.task.name == "tau1")
        assert ea_tau1.energy_consumed == pytest.approx(8.0 * 8.0 / 3.0)
        assert lsa_tau1.energy_consumed == pytest.approx(32.0)

    def test_greedy_edf_stalls_and_misses_tau2(self):
        """Running flat-out from t=0 drains the storage at t=3.2; tau1
        limps to completion in harvest-powered bursts but tau2 is
        starved."""
        outcome = run_motivational_example("edf")
        assert not outcome.tau2_met
        assert outcome.result.missed_count >= 1
        assert outcome.result.stall_count > 0


class TestFigure3Example:
    """tau1 = (0, 16, 4), tau2 = (5, 12, 1.5); f_n = 0.25 f_max."""

    def test_ea_dvfs_switches_up_and_meets_both(self):
        """Paper: with the s2 switch-up, tau1 finishes shortly after 13
        and tau2 still meets its deadline of 17."""
        outcome = run_stretch_example("ea-dvfs")
        assert outcome.result.missed_count == 0
        tau1 = next(j for j in outcome.result.jobs if j.task.name == "tau1")
        # Paper narrative: finished at 13 (plan committed at t=0); our
        # simulator re-plans when tau2 arrives at t=5, landing close by.
        assert tau1.completion_time == pytest.approx(13.0, abs=1.0)
        assert outcome.tau2_met

    def test_greedy_stretching_starves_tau2(self):
        """Paper: 'If task tau1 is stretched excessively, then under no
        circumstance is the system able to finish tau2 before its
        deadline.'"""
        outcome = run_stretch_example("stretch-edf")
        assert not outcome.tau2_met
        assert outcome.result.missed_count >= 1

    def test_stretch_edf_finishes_tau1_at_16(self):
        """The greedy stretcher runs tau1 at quarter speed through its
        whole window (completion at 16)."""
        outcome = run_stretch_example("stretch-edf")
        tau1 = next(j for j in outcome.result.jobs if j.task.name == "tau1")
        assert tau1.completion_time == pytest.approx(16.0)

    def test_outcome_formatting(self):
        text = run_stretch_example("ea-dvfs").format_text()
        assert "tau2 meets" in text
