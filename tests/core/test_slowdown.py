"""Unit tests for the EA-DVFS slow-down math (equations (5)-(12))."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slowdown import compute_plan, minimum_feasible_level
from repro.cpu.presets import (
    motivational_example_scale,
    stretch_example_scale,
    xscale_pxa,
)


class TestMotivationalExampleNumbers:
    """Section 2 / Figure 1: tau1 = (0, 16, 4), E_avail = 24 + 8 = 32."""

    def test_tau1_plan(self):
        scale = motivational_example_scale()
        plan = compute_plan(
            now=0.0, deadline=16.0, remaining_work=4.0,
            available_energy=32.0, scale=scale,
        )
        # Low speed S=0.5 is feasible (4/0.5 = 8 <= 16); P_n = 8/3.
        assert plan.level.speed == pytest.approx(0.5)
        # eq. (5): sr_n = 32 / (8/3) = 12 -> s1 = max(0, 16 - 12) = 4.
        assert plan.s1 == pytest.approx(4.0)
        # eq. (9): sr_max = 32 / 8 = 4 -> s2 = max(0, 16 - 4) = 12.
        assert plan.s2 == pytest.approx(12.0)
        assert plan.start_at == pytest.approx(4.0)
        assert plan.switch_to_max_at == pytest.approx(12.0)
        assert not plan.sufficient_energy
        assert plan.deadline_reachable

    def test_lsa_start_time_is_s2(self):
        """LSA's 'start when max power is sustainable' instant is s2 = 12."""
        scale = motivational_example_scale()
        plan = compute_plan(0.0, 16.0, 4.0, 32.0, scale)
        assert plan.s2 == pytest.approx(12.0)


class TestStretchExampleNumbers:
    """Section 4.3 / Figure 3: f_n = 0.25 f_max, P_n = 1, E_avail = 32."""

    def test_tau1_plan(self):
        scale = stretch_example_scale()
        plan = compute_plan(
            now=0.0, deadline=16.0, remaining_work=4.0,
            available_energy=32.0, scale=scale,
        )
        # sr_n = 32 / 1 = 32 -> s1 = max(0, 16 - 32) = 0 (paper's text).
        assert plan.s1 == pytest.approx(0.0)
        # sr_max = 32 / 8 = 4 -> s2 = 12 (paper's Figure 3).
        assert plan.s2 == pytest.approx(12.0)
        assert plan.level.speed == pytest.approx(0.25)
        assert plan.start_at == pytest.approx(0.0)
        assert plan.switch_to_max_at == pytest.approx(12.0)


class TestSufficientEnergyCase:
    def test_s1_equals_s2_at_now_runs_full_speed(self):
        """Case (a): plenty of energy -> both start times collapse to now."""
        scale = xscale_pxa()
        plan = compute_plan(
            now=0.0, deadline=10.0, remaining_work=2.0,
            available_energy=1e6, scale=scale,
        )
        assert plan.sufficient_energy
        assert plan.level.speed == 1.0
        assert plan.start_at == 0.0
        assert plan.switch_to_max_at is None

    def test_infinite_energy_is_edf(self):
        """Section 4.3 special case: infinite storage -> s1 = s2 = now."""
        scale = xscale_pxa()
        plan = compute_plan(
            now=5.0, deadline=20.0, remaining_work=3.0,
            available_energy=math.inf, scale=scale,
        )
        assert plan.s1 == 5.0
        assert plan.s2 == 5.0
        assert plan.sufficient_energy
        assert plan.level.speed == 1.0

    def test_inequality_12_boundary(self):
        """s1 == s2 == now iff sr_max >= window (ineq. (12))."""
        scale = xscale_pxa()
        window, work = 10.0, 2.0
        exactly_enough = scale.max_power * window  # sr_max == window
        plan = compute_plan(0.0, window, work, exactly_enough, scale)
        assert plan.sufficient_energy
        slightly_short = exactly_enough * 0.99
        plan = compute_plan(0.0, window, work, slightly_short, scale)
        assert not plan.sufficient_energy


class TestScarceEnergyCase:
    def test_zero_energy_defers_to_deadline(self):
        scale = xscale_pxa()
        plan = compute_plan(0.0, 10.0, 2.0, 0.0, scale)
        # sr = 0 for every level: both start times collapse at the deadline.
        assert plan.s1 == pytest.approx(10.0)
        assert plan.s2 == pytest.approx(10.0)
        assert plan.start_at == pytest.approx(10.0)
        assert not plan.sufficient_energy

    def test_negative_energy_clamped(self):
        scale = xscale_pxa()
        plan = compute_plan(0.0, 10.0, 2.0, -5.0, scale)
        assert plan.s1 == pytest.approx(10.0)

    def test_degenerate_when_only_full_speed_fits(self):
        """No slower feasible level: the plan is LSA-like (wait, then max)."""
        scale = xscale_pxa()
        # work 9 in window 10: 9/0.8 > 10, only S=1 fits.
        plan = compute_plan(0.0, 10.0, 9.0, 16.0, scale)
        assert plan.level.speed == 1.0
        assert plan.switch_to_max_at is None
        # sr_max = 16/3.2 = 5 -> start at 5.
        assert plan.start_at == pytest.approx(5.0)
        assert not plan.sufficient_energy

    def test_unreachable_deadline_flagged(self):
        scale = xscale_pxa()
        plan = compute_plan(0.0, 5.0, 6.0, 1e9, scale)
        assert not plan.deadline_reachable
        assert plan.level.speed == 1.0
        assert plan.start_at == 0.0


class TestMinimumFeasibleLevel:
    def test_delegates_to_scale(self):
        scale = xscale_pxa()
        assert minimum_feasible_level(scale, 4.0, 16.0).speed == pytest.approx(0.4)
        assert minimum_feasible_level(scale, 4.0, 3.0) is None


class TestPlanInvariants:
    @given(
        now=st.floats(min_value=0, max_value=100),
        window=st.floats(min_value=0.1, max_value=100),
        work=st.floats(min_value=0.01, max_value=100),
        energy=st.floats(min_value=0, max_value=10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_structural_invariants(self, now, window, work, energy):
        scale = xscale_pxa()
        plan = compute_plan(now, now + window, work, energy, scale)
        # s1 never after s2 (P_n <= P_max in eq. (5)).
        assert plan.s1 <= plan.s2 + 1e-9
        # start never before now, never after the deadline.
        assert plan.start_at >= now - 1e-9
        assert plan.start_at <= now + window + 1e-9
        # a slow phase always carries its switch-up point, at s2.
        if plan.switch_to_max_at is not None:
            assert plan.level.speed < 1.0
            assert plan.switch_to_max_at == pytest.approx(plan.s2)
            # ineq. (6): the stretched execution fits the window.
            assert work / plan.level.speed <= window + 1e-6
        # sufficiency implies an immediate full-speed start.
        if plan.sufficient_energy:
            assert plan.start_at == pytest.approx(now)
            assert plan.level.speed == 1.0

    @given(
        energy_lo=st.floats(min_value=0, max_value=1000),
        extra=st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_energy_never_delays_start(self, energy_lo, extra):
        """start_at is non-increasing in available energy."""
        scale = xscale_pxa()
        lo = compute_plan(0.0, 50.0, 5.0, energy_lo, scale)
        hi = compute_plan(0.0, 50.0, 5.0, energy_lo + extra, scale)
        assert hi.start_at <= lo.start_at + 1e-9
