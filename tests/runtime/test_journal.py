"""Unit tests for the durable result journal."""

import math

import pytest

from repro.analysis.parallel import RunFailure, RunSpec
from repro.experiments.common import PaperSetup
from repro.faults.chaos import flip_byte, truncate_tail
from repro.runtime.journal import (
    ENGINE_VERSION,
    JournalError,
    JournalKey,
    ResultJournal,
    failure_from_payload,
    failure_to_payload,
    journal_key,
    result_from_payload,
    result_to_payload,
    spec_hash,
)
from repro.serialization import canonical_json
from repro.sim.simulator import SimulationResult

FAST_SETUP = PaperSetup(horizon=200.0)


def make_spec(seed=0, capacity=50.0, name="edf"):
    return RunSpec(name, 0.4, capacity, seed, setup=FAST_SETUP)


def make_result(name="edf", capacity=50.0):
    return SimulationResult(
        scheduler_name=name,
        horizon=200.0,
        jobs=(),
        released_count=40,
        completed_count=38,
        missed_count=2,
        judged_count=40,
        harvested_energy=123.456789,
        drawn_energy=98.7654321,
        overflow_energy=0.1,
        leaked_energy=0.0,
        final_stored=7.25,
        storage_capacity=capacity,
        busy_time_profile={0.5: 10.125, 1.0: 85.5},
        idle_time=104.375,
        switch_count=17,
        stall_count=3,
        stall_time=2.5,
        per_task_released={"t0": 20, "t1": 20},
        per_task_missed={"t0": 2},
    )


def make_failure(spec):
    return RunFailure(
        spec=spec,
        error_type="RuntimeError",
        message="boom",
        attempts=2,
        timed_out=False,
        traceback="Traceback (most recent call last):\n  boom\n",
        diagnostics={"violation": "stall", "time": 12.0},
    )


class TestSpecHash:
    def test_stable(self):
        assert spec_hash(make_spec()) == spec_hash(make_spec())

    def test_sensitive_to_every_cell_coordinate(self):
        base = spec_hash(make_spec())
        assert spec_hash(make_spec(seed=1)) != base
        assert spec_hash(make_spec(capacity=51.0)) != base
        # The scheduler lives in the key, not the hash: same workload,
        # different scheduler = same spec_hash, different JournalKey.
        assert spec_hash(make_spec(name="lsa")) == base
        assert journal_key(make_spec(name="lsa")) != journal_key(make_spec())

    def test_sensitive_to_setup_fields_and_class(self):
        base = spec_hash(make_spec())
        other = RunSpec("edf", 0.4, 50.0, 0, setup=PaperSetup(horizon=300.0))
        assert spec_hash(other) != base

    def test_key_carries_engine_version(self):
        key = journal_key(make_spec())
        assert key.engine_version == ENGINE_VERSION
        assert key.text().endswith(f"/e{ENGINE_VERSION}")


class TestPayloadRoundTrip:
    def test_result_round_trips_bit_exactly(self):
        result = make_result()
        payload = result_to_payload(result)
        back = result_from_payload(payload)
        assert result_to_payload(back) == payload
        assert canonical_json(payload) == canonical_json(result_to_payload(back))
        assert back.busy_time_profile == result.busy_time_profile
        assert back.miss_rate == result.miss_rate

    def test_infinite_capacity_round_trips(self):
        result = make_result(capacity=math.inf)
        back = result_from_payload(result_to_payload(result))
        assert math.isinf(back.storage_capacity)

    def test_failure_round_trips(self):
        spec = make_spec()
        failure = make_failure(spec)
        back = failure_from_payload(failure_to_payload(failure), spec)
        assert back == failure


class TestJournalBasics:
    def test_create_and_reopen_empty(self, tmp_path):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            assert len(journal) == 0
        with ResultJournal(path, create=False) as journal:
            assert len(journal) == 0
            assert journal.info().torn_bytes_discarded == 0

    def test_missing_without_create_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            ResultJournal(tmp_path / "absent.journal", create=False)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bogus.journal"
        path.write_bytes(b"NOTJRNL1" + b"x" * 32)
        with pytest.raises(JournalError, match="bad magic"):
            ResultJournal(path)

    def test_append_get_contains(self, tmp_path):
        spec = make_spec()
        key = journal_key(spec)
        with ResultJournal(tmp_path / "j.journal") as journal:
            assert key not in journal
            journal.append_result(key, make_result())
            assert key in journal
            record = journal.get(key)
            assert record["kind"] == "result"
            assert record["payload"] == result_to_payload(make_result())

    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "j.journal"
        spec = make_spec()
        with ResultJournal(path) as journal:
            journal.append_result(journal_key(spec), make_result())
            journal.append_failure(
                journal_key(make_spec(seed=1)), make_failure(make_spec(seed=1))
            )
        with ResultJournal(path, create=False) as journal:
            info = journal.info()
            assert (info.records, info.results, info.failures) == (2, 1, 1)
            assert info.torn_bytes_discarded == 0
            back = result_from_payload(journal.get(journal_key(spec))["payload"])
            assert back.missed_count == 2

    def test_duplicate_append_last_wins(self, tmp_path):
        path = tmp_path / "j.journal"
        spec = make_spec()
        key = journal_key(spec)
        with ResultJournal(path) as journal:
            journal.append_failure(key, make_failure(spec))
            journal.append_result(key, make_result())
            assert len(journal) == 1
            assert journal.get(key)["kind"] == "result"
        with ResultJournal(path, create=False) as journal:
            assert len(journal) == 1
            assert journal.get(key)["kind"] == "result"
            assert journal.info().failures == 0

    def test_append_kind_validated(self, tmp_path):
        with ResultJournal(tmp_path / "j.journal") as journal:
            with pytest.raises(ValueError, match="kind"):
                journal.append(journal_key(make_spec()), "banana", {})

    def test_canonical_export_is_deterministic(self, tmp_path):
        a = ResultJournal(tmp_path / "a.journal")
        b = ResultJournal(tmp_path / "b.journal")
        for seed in (2, 0, 1):
            spec = make_spec(seed=seed)
            a.append_result(journal_key(spec), make_result())
        for seed in (0, 1, 2):  # different append order, same content
            spec = make_spec(seed=seed)
            b.append_result(journal_key(spec), make_result())
        assert canonical_json(a.to_canonical()) == canonical_json(b.to_canonical())
        a.close()
        b.close()


class TestTornTailRecovery:
    def fill(self, path, n=3):
        with ResultJournal(path) as journal:
            for seed in range(n):
                spec = make_spec(seed=seed)
                journal.append_result(journal_key(spec), make_result())
            return path.stat().st_size

    @pytest.mark.parametrize("drop", [1, 5, 37])
    def test_truncated_tail_discards_only_last_record(self, tmp_path, drop):
        path = tmp_path / "j.journal"
        self.fill(path)
        truncate_tail(path, drop)
        with ResultJournal(path, create=False) as journal:
            info = journal.info()
            assert info.records == 2
            # The torn remainder of record 3 is gone from disk too.
            assert journal_key(make_spec(seed=2)) not in journal
            assert info.torn_bytes_discarded > 0
        # A second open is clean: recovery already truncated the tear.
        with ResultJournal(path, create=False) as journal:
            assert journal.info().torn_bytes_discarded == 0

    def test_appended_garbage_discarded(self, tmp_path):
        path = tmp_path / "j.journal"
        self.fill(path)
        with open(path, "ab") as handle:
            handle.write(b"\x07garbage")
        with ResultJournal(path, create=False) as journal:
            assert journal.info().records == 3
            assert journal.info().torn_bytes_discarded == 8

    def test_bitrot_in_last_record_discards_it(self, tmp_path):
        path = tmp_path / "j.journal"
        self.fill(path)
        flip_byte(path, 10)  # inside the last record's payload
        with ResultJournal(path, create=False) as journal:
            assert journal.info().records == 2
            assert journal.info().torn_bytes_discarded > 0

    def test_append_after_recovery(self, tmp_path):
        path = tmp_path / "j.journal"
        self.fill(path)
        truncate_tail(path, 3)
        with ResultJournal(path, create=False) as journal:
            spec = make_spec(seed=2)
            journal.append_result(journal_key(spec), make_result())
            assert journal.info().records == 3
        with ResultJournal(path, create=False) as journal:
            assert journal.info().records == 3
            assert journal.info().torn_bytes_discarded == 0

    def test_keys_are_order_insensitive_dataclasses(self):
        key = JournalKey(spec_hash="ab", scheduler_name="edf")
        assert key == JournalKey(spec_hash="ab", scheduler_name="edf")
        assert key.text() == f"ab/edf/e{ENGINE_VERSION}"
