"""Chaos acceptance suite: kill-and-resume equals uninterrupted.

These tests drive the real CLI in real subprocesses: a sweep is
SIGKILL'd at three seeded interruption points — before a journal append,
mid-append (torn write) and right after one — then resumed against the
surviving journal.  The acceptance bar is bit-identical canonical
exports versus a sweep that was never interrupted.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SWEEP_ARGS = [
    "sweep",
    "--scheduler", "edf",
    "--capacities", "50",
    "--seeds", "3",
    "--horizon", "200",
    "--workers", "1",
]

#: (1-based armed append, kill mode): the three seeded interruption
#: points of the acceptance criterion — first record lost entirely,
#: second torn mid-write, third durable with the process dying after.
KILL_POINTS = [(1, "before"), (2, "torn"), (3, "after")]


def run_cli(args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop("REPRO_JOURNAL", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"cli {args} failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def sweep(journal, extra=()):
    return run_cli([*SWEEP_ARGS, "--journal", str(journal), *extra])


def export(journal, out):
    run_cli(["journal", "export", str(journal), "--out", str(out)])
    return Path(out).read_bytes()


@pytest.mark.slow
class TestKillAndResume:
    def test_resume_is_bit_identical_at_every_kill_point(self, tmp_path):
        clean = tmp_path / "clean.journal"
        sweep(clean)
        reference = export(clean, tmp_path / "clean.json")
        assert reference  # non-empty canonical export

        for record, mode in KILL_POINTS:
            journal = tmp_path / f"chaos-{record}-{mode}.journal"
            proc = run_cli(
                [
                    *SWEEP_ARGS,
                    "--journal", str(journal),
                    "--chaos-kill-record", str(record),
                    "--chaos-kill-mode", mode,
                ],
                check=False,
            )
            assert proc.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
                f"expected SIGKILL death at ({record}, {mode}), got "
                f"{proc.returncode}: {proc.stdout} {proc.stderr}"
            )

            # What survived is exactly what the kill mode promises.
            inspect = run_cli(["journal", "inspect", str(journal)]).stdout
            durable = record if mode == "after" else record - 1
            assert f"records: {durable} " in inspect
            if mode == "torn":
                assert "recovered: discarded" in inspect

            # Resume: only the missing cells run, then exports match
            # the uninterrupted reference byte for byte.
            resumed = sweep(journal)
            assert f"journal: {durable} hit(s)" in resumed.stdout
            assert export(journal, tmp_path / f"{record}-{mode}.json") == reference

    def test_double_kill_then_resume(self, tmp_path):
        # Crash twice at different points; the journal still converges.
        journal = tmp_path / "twice.journal"
        for record, mode in ((1, "torn"), (2, "torn")):
            proc = run_cli(
                [
                    *SWEEP_ARGS,
                    "--journal", str(journal),
                    "--chaos-kill-record", str(record),
                    "--chaos-kill-mode", mode,
                ],
                check=False,
            )
            assert proc.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)
        sweep(journal)
        clean = tmp_path / "clean.journal"
        sweep(clean)
        assert export(journal, tmp_path / "a.json") == export(
            clean, tmp_path / "b.json"
        )


@pytest.mark.slow
class TestCliSweepFailures:
    def test_usage_errors_exit_2(self, tmp_path):
        proc = run_cli(
            [*SWEEP_ARGS, "--chaos-kill-record", "1"], check=False
        )
        assert proc.returncode == 2  # chaos kill without --journal

    def test_sweep_exit_codes(self, tmp_path):
        ok = run_cli([*SWEEP_ARGS, "--export", str(tmp_path / "e.json")])
        assert "3 ok" in ok.stdout
        assert (tmp_path / "e.json").exists()
