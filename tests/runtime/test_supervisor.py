"""Tests for the supervised sweep loop: resume, quarantine, budgets."""

import dataclasses
import time
from dataclasses import dataclass

import pytest

from repro.analysis.parallel import RunFailure, RunSpec
from repro.experiments.common import PaperSetup
from repro.faults.chaos import FlakySetup
from repro.runtime.journal import ResultJournal, journal_key, result_to_payload
from repro.runtime.supervisor import (
    SupervisorPolicy,
    SweepReport,
    run_supervised,
)
from repro.runtime.sweep import (
    SweepFailedError,
    journal_from_env,
    journaled_capacity_sweep,
    journaled_miss_rates,
    run_journaled_sweep,
)
from repro.serialization import canonical_json
from repro.sim.simulator import SimulationResult

FAST_SETUP = PaperSetup(horizon=200.0)


@dataclass(frozen=True)
class RaisingSetup(PaperSetup):
    def run(self, *args, **kwargs):
        raise RuntimeError("injected crash")


@dataclass(frozen=True)
class SlowSetup(PaperSetup):
    """Healthy, but slow enough that a tiny wall-clock budget trips."""

    def run(self, *args, **kwargs):
        time.sleep(0.05)
        return super().run(*args, **kwargs)


def specs_for(n, setup=FAST_SETUP, name="edf"):
    return [RunSpec(name, 0.4, 50.0, seed, setup=setup) for seed in range(n)]


class TestPolicyValidation:
    def test_bad_retries(self):
        with pytest.raises(ValueError, match="retries"):
            SupervisorPolicy(retries=-1)

    def test_bad_quarantine(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            SupervisorPolicy(quarantine_after=0)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            SupervisorPolicy(batch_size=0)

    def test_bad_budgets(self):
        with pytest.raises(ValueError, match="max_wall_clock"):
            SupervisorPolicy(max_wall_clock=0.0)
        with pytest.raises(ValueError, match="max_rss_mb"):
            SupervisorPolicy(max_rss_mb=-1.0)


class TestSupervisedNoJournal:
    def test_all_healthy(self):
        report = run_supervised(specs_for(3), max_workers=1)
        assert report.ok
        assert report.executed == 3
        assert report.journal_hits == 0
        assert len(report.results()) == 3
        assert "3 cell(s)" in report.format_text()

    def test_failures_reported_in_order(self):
        specs = specs_for(1) + specs_for(1, setup=RaisingSetup())
        report = run_supervised(
            specs, policy=SupervisorPolicy(retries=0, backoff=0.0), max_workers=1
        )
        assert not report.ok
        assert report.failed == 1
        assert isinstance(report.outcomes[0], SimulationResult)
        failure = report.outcomes[1]
        assert isinstance(failure, RunFailure)
        assert "FAILED" in report.format_text()

    def test_wall_clock_budget_flushes_partial(self):
        policy = SupervisorPolicy(max_wall_clock=0.06, batch_size=1)
        report = run_supervised(
            specs_for(30, setup=SlowSetup()), policy=policy, max_workers=1
        )
        assert report.budget_exhausted == "wall-clock"
        assert report.not_run > 0
        assert report.executed + report.not_run == 30
        assert "budget exhausted" in report.format_text()

    def test_memory_budget_trips_immediately(self):
        # Any real process exceeds 1 MiB RSS, so the first check trips.
        policy = SupervisorPolicy(max_rss_mb=1.0)
        report = run_supervised(specs_for(2), policy=policy, max_workers=1)
        assert report.budget_exhausted == "memory"
        assert report.executed == 0
        assert report.not_run == 2


class TestSupervisedWithJournal:
    def test_resume_skips_journaled_results(self, tmp_path):
        specs = specs_for(4)
        with ResultJournal(tmp_path / "j.journal") as journal:
            first = run_supervised(specs, journal=journal, max_workers=1)
            assert (first.journal_hits, first.executed) == (0, 4)
            second = run_supervised(specs, journal=journal, max_workers=1)
            assert (second.journal_hits, second.executed) == (4, 0)
        assert canonical_json(
            [result_to_payload(r) for r in first.results()]
        ) == canonical_json([result_to_payload(r) for r in second.results()])

    def test_partial_journal_runs_only_missing(self, tmp_path):
        specs = specs_for(4)
        with ResultJournal(tmp_path / "j.journal") as journal:
            run_supervised(specs[:2], journal=journal, max_workers=1)
            report = run_supervised(specs, journal=journal, max_workers=1)
            assert (report.journal_hits, report.executed) == (2, 2)
            assert report.ok

    def test_failures_retried_on_resume_until_quarantined(self, tmp_path):
        specs = specs_for(1, setup=RaisingSetup())
        policy = SupervisorPolicy(retries=0, backoff=0.0, quarantine_after=3)
        with ResultJournal(tmp_path / "j.journal") as journal:
            for expected_attempts in (1, 2):
                report = run_supervised(
                    specs, policy=policy, journal=journal, max_workers=1
                )
                failure = report.outcomes[0]
                assert failure.attempts == expected_attempts
                assert failure.quarantined is False
                assert report.executed == 1
            # Third run reaches the threshold and quarantines.
            report = run_supervised(
                specs, policy=policy, journal=journal, max_workers=1
            )
            assert report.outcomes[0].quarantined is True
            assert report.quarantined == 1
            # Fourth run: quarantined failure is a journal hit, no retry.
            report = run_supervised(
                specs, policy=policy, journal=journal, max_workers=1
            )
            assert report.executed == 0
            assert report.journal_hits == 1
            assert report.outcomes[0].quarantined is True

    def test_flaky_cell_heals_through_journaled_retries(self, tmp_path):
        setup = FlakySetup(
            horizon=200.0,
            scratch_dir=str(tmp_path / "scratch"),
            fail_attempts=1,
            mode="raise",
        )
        specs = specs_for(1, setup=setup)
        policy = SupervisorPolicy(retries=1, backoff=0.0)
        with ResultJournal(tmp_path / "j.journal") as journal:
            report = run_supervised(
                specs, policy=policy, journal=journal, max_workers=1
            )
            assert report.ok  # failed once, healed on the in-run retry
            result = report.outcomes[0]
            assert isinstance(result, SimulationResult)


class TestJournaledSweepHelpers:
    def test_env_journal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL", str(tmp_path / "env.journal"))
        journal = journal_from_env()
        assert journal is not None
        journal.close()
        report = run_journaled_sweep(specs_for(2), max_workers=1)
        assert report.ok
        assert report.journal_hits == 0
        # Rerun resumes from the same env journal.
        report = run_journaled_sweep(specs_for(2), max_workers=1)
        assert report.journal_hits == 2

    def test_env_unset_means_no_journal(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL", raising=False)
        assert journal_from_env() is None
        report = run_journaled_sweep(specs_for(1), max_workers=1)
        assert report.journal_path is None

    def test_journaled_miss_rates_matches_serial(self, tmp_path):
        from repro.analysis.sweep import run_replications

        rates = journaled_miss_rates(
            ("edf", "lsa"),
            utilization=0.4,
            capacity=50.0,
            seeds=range(2),
            setup=FAST_SETUP,
            journal=ResultJournal(tmp_path / "j.journal"),
            max_workers=1,
        )
        factory = FAST_SETUP.factory(0.4)
        for name in ("edf", "lsa"):
            serial = run_replications(factory, name, 50.0, range(2))
            assert rates[name] == pytest.approx(
                serial.metrics.pooled_miss_rate
            )

    def test_journaled_capacity_sweep_matches_parallel_shape(self, tmp_path):
        points = journaled_capacity_sweep(
            ("edf",),
            utilization=0.4,
            capacities=(25.0, 50.0),
            seeds=range(2),
            setup=FAST_SETUP,
            journal=ResultJournal(tmp_path / "j.journal"),
            max_workers=1,
        )
        assert [p.capacity for p in points] == [25.0, 50.0]
        for point in points:
            run = point.by_scheduler["edf"]
            assert len(run.results) == 2
            assert 0.0 <= point.miss_rate("edf") <= 1.0

    def test_sweep_failed_error_carries_traceback(self, tmp_path):
        with pytest.raises(SweepFailedError, match="injected crash") as info:
            journaled_miss_rates(
                ("edf",),
                utilization=0.4,
                capacity=50.0,
                seeds=range(1),
                setup=RaisingSetup(),
                journal=ResultJournal(tmp_path / "j.journal"),
                max_workers=1,
            )
        failure = info.value.failures[0]
        assert failure.traceback is not None
        assert "RuntimeError" in failure.traceback


class TestSweepReportShape:
    def test_counts_consistent(self):
        report = SweepReport(
            outcomes=(None,),
            journal_hits=0,
            executed=0,
            not_run=1,
            failed=0,
            quarantined=0,
            elapsed=0.0,
            budget_exhausted="wall-clock",
        )
        assert not report.ok
        assert report.completed == 0
        assert dataclasses.asdict(report)["budget_exhausted"] == "wall-clock"
