"""Unit and property tests for the energy source models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.source import (
    SOLAR_ENVELOPE_PERIOD,
    CompositeSource,
    ConstantSource,
    DayNightSource,
    ScaledSource,
    SolarStochasticSource,
    TraceSource,
)


class TestConstantSource:
    def test_power_everywhere(self):
        src = ConstantSource(2.5)
        assert src.power(0.0) == 2.5
        assert src.power(123.4) == 2.5

    def test_energy_is_linear(self):
        src = ConstantSource(0.5)
        assert src.energy(0.0, 16.0) == pytest.approx(8.0)

    def test_no_boundaries(self):
        assert ConstantSource(1.0).next_boundary(10.0) == math.inf

    def test_mean_power(self):
        assert ConstantSource(3.0).mean_power() == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantSource(-1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ConstantSource(1.0).power(-5.0)

    def test_infinite_energy_end_rejected(self):
        with pytest.raises(ValueError, match="finite end"):
            ConstantSource(1.0).energy(0.0, math.inf)


class TestSolarStochasticSource:
    def test_deterministic_given_seed(self):
        a = SolarStochasticSource(seed=3)
        b = SolarStochasticSource(seed=3)
        times = np.linspace(0, 500, 100)
        assert [a.power(t) for t in times] == [b.power(t) for t in times]

    def test_different_seeds_differ(self):
        a = SolarStochasticSource(seed=1)
        b = SolarStochasticSource(seed=2)
        assert any(a.power(t) != b.power(t) for t in range(50))

    def test_out_of_order_queries_consistent(self):
        """Query order must not change the realization (cached draws)."""
        a = SolarStochasticSource(seed=5)
        late_then_early = (a.power(400.0), a.power(3.0))
        b = SolarStochasticSource(seed=5)
        early_then_late = (b.power(3.0), b.power(400.0))
        assert late_then_early == (early_then_late[1], early_then_late[0])

    def test_non_negative_with_abs(self):
        src = SolarStochasticSource(seed=0, rectify="abs")
        assert all(src.power(float(t)) >= 0 for t in range(1000))

    def test_non_negative_with_clamp_and_many_zeros(self):
        src = SolarStochasticSource(seed=0, rectify="clamp")
        values = [src.power(float(t)) for t in range(1000)]
        assert all(v >= 0 for v in values)
        # clamp zeroes out roughly half the Gaussian draws
        assert sum(1 for v in values if v == 0.0) > 300

    def test_raw_mode_can_be_negative(self):
        src = SolarStochasticSource(seed=0, rectify="none")
        assert any(src.power(float(t)) < 0 for t in range(200))

    def test_constant_within_quantum(self):
        src = SolarStochasticSource(seed=9)
        assert src.power(10.0) == src.power(10.5) == src.power(10.999)

    def test_boundary_advances_by_quantum(self):
        src = SolarStochasticSource(seed=9)
        assert src.next_boundary(10.0) == pytest.approx(11.0)
        assert src.next_boundary(10.7) == pytest.approx(11.0)

    def test_envelope_modulates_amplitude(self):
        """Power near the envelope trough is much smaller than near crest."""
        src = SolarStochasticSource(seed=1)
        period = SOLAR_ENVELOPE_PERIOD
        crest = [src.power(k * period + d) for k in range(3) for d in range(5)]
        trough = [
            src.power(k * period + period / 2 + d)
            for k in range(3)
            for d in range(5)
        ]
        assert np.mean(crest) > 10 * max(np.mean(trough), 1e-12)

    def test_empirical_mean_matches_analytic(self):
        src = SolarStochasticSource(seed=12)
        horizon = 20_000.0
        empirical = src.energy(0.0, horizon) / horizon
        assert empirical == pytest.approx(src.mean_power(), rel=0.1)

    def test_mean_power_closed_forms(self):
        assert SolarStochasticSource(rectify="abs").mean_power() == pytest.approx(
            10.0 * math.sqrt(2 / math.pi) / 2
        )
        assert SolarStochasticSource(rectify="clamp").mean_power() == pytest.approx(
            10.0 / (2 * math.sqrt(2 * math.pi))
        )

    def test_invalid_rectify_rejected(self):
        with pytest.raises(ValueError, match="rectify"):
            SolarStochasticSource(rectify="wrong")

    @given(
        t0=st.floats(min_value=0, max_value=1000),
        span_a=st.floats(min_value=0.1, max_value=100),
        span_b=st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_additivity(self, t0, span_a, span_b):
        """ES(t0, t2) == ES(t0, t1) + ES(t1, t2) — eq. (2) is an integral."""
        src = SolarStochasticSource(seed=7)
        t1, t2 = t0 + span_a, t0 + span_a + span_b
        whole = src.energy(t0, t2)
        parts = src.energy(t0, t1) + src.energy(t1, t2)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)


class TestDayNightSource:
    def test_two_modes(self):
        src = DayNightSource(day_power=5.0, night_power=1.0,
                             day_length=10.0, night_length=10.0)
        assert src.power(3.0) == 5.0
        assert src.power(15.0) == 1.0
        assert src.power(23.0) == 5.0  # wrapped into the next day

    def test_boundaries_at_mode_switches(self):
        src = DayNightSource(day_power=5.0, night_power=1.0,
                             day_length=10.0, night_length=5.0)
        assert src.next_boundary(3.0) == pytest.approx(10.0)
        assert src.next_boundary(12.0) == pytest.approx(15.0)
        assert src.next_boundary(15.0) == pytest.approx(25.0)

    def test_mean_power_weighted(self):
        src = DayNightSource(day_power=6.0, night_power=0.0,
                             day_length=10.0, night_length=30.0)
        assert src.mean_power() == pytest.approx(1.5)

    def test_energy_over_full_cycle(self):
        src = DayNightSource(day_power=2.0, night_power=0.5,
                             day_length=10.0, night_length=10.0)
        assert src.energy(0.0, 20.0) == pytest.approx(25.0)

    def test_phase_shifts_start(self):
        src = DayNightSource(day_power=5.0, night_power=1.0,
                             day_length=10.0, night_length=10.0, phase=10.0)
        assert src.power(0.0) == 1.0  # starts in the night

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            DayNightSource(1.0, day_length=5.0, night_length=5.0, phase=10.0)


class TestTraceSource:
    def test_replays_values(self):
        src = TraceSource([1.0, 2.0, 3.0])
        assert src.power(0.5) == 1.0
        assert src.power(1.5) == 2.0
        assert src.power(2.9) == 3.0

    def test_dead_after_end(self):
        src = TraceSource([1.0, 2.0])
        assert src.power(5.0) == 0.0

    def test_cyclic_wraps(self):
        src = TraceSource([1.0, 2.0], cyclic=True)
        assert src.power(2.5) == 1.0
        assert src.power(3.5) == 2.0

    def test_custom_quantum(self):
        src = TraceSource([1.0, 2.0], quantum=5.0)
        assert src.power(4.9) == 1.0
        assert src.power(5.1) == 2.0
        assert src.next_boundary(1.0) == pytest.approx(5.0)

    def test_energy_integrates_exactly(self):
        src = TraceSource([1.0, 3.0, 2.0])
        assert src.energy(0.5, 2.5) == pytest.approx(0.5 * 1 + 1 * 3 + 0.5 * 2)

    def test_mean_power(self):
        assert TraceSource([1.0, 3.0]).mean_power() == 2.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            TraceSource([1.0, -2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSource([])


class TestCombinators:
    def test_scaled_gain_and_offset(self):
        src = ScaledSource(ConstantSource(2.0), gain=0.5, offset=1.0)
        assert src.power(0.0) == 2.0

    def test_scaled_clamps_at_zero(self):
        src = ScaledSource(ConstantSource(1.0), gain=1.0, offset=-5.0)
        assert src.power(0.0) == 0.0

    def test_scaled_inherits_boundaries(self):
        inner = TraceSource([1.0, 2.0])
        assert ScaledSource(inner, gain=2.0).next_boundary(0.5) == pytest.approx(1.0)

    def test_composite_sums_power(self):
        src = CompositeSource([ConstantSource(1.0), ConstantSource(2.5)])
        assert src.power(3.0) == 3.5
        assert src.mean_power() == 3.5

    def test_composite_min_boundary(self):
        src = CompositeSource(
            [TraceSource([1.0] * 10, quantum=3.0), TraceSource([1.0] * 10, quantum=2.0)]
        )
        assert src.next_boundary(0.0) == pytest.approx(2.0)

    def test_composite_energy(self):
        src = CompositeSource([ConstantSource(1.0), ConstantSource(2.0)])
        assert src.energy(0.0, 10.0) == pytest.approx(30.0)

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeSource([])


class TestSample:
    def test_sample_grid(self):
        src = ConstantSource(2.0)
        values = src.sample(0.0, 5.0, step=1.0)
        assert values.shape == (5,)
        assert (values == 2.0).all()

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            ConstantSource(1.0).sample(0.0, 1.0, step=0.0)
