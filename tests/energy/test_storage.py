"""Unit and property tests for the energy storage models."""

import math

import pytest
from hypothesis import given, settings

from repro.energy.storage import IdealStorage, NonIdealStorage
from repro.verify.strategies import storage_programs


class TestIdealStorageBasics:
    def test_starts_full_by_default(self):
        storage = IdealStorage(capacity=100.0)
        assert storage.stored == 100.0
        assert storage.is_full
        assert storage.fraction == 1.0

    def test_custom_initial(self):
        storage = IdealStorage(capacity=100.0, initial=20.0)
        assert storage.stored == 20.0
        assert not storage.is_full

    def test_initial_above_capacity_rejected(self):
        with pytest.raises(ValueError, match="exceeds capacity"):
            IdealStorage(capacity=10.0, initial=11.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            IdealStorage(capacity=0.0)

    def test_infinite_capacity_finite_level(self):
        storage = IdealStorage(capacity=math.inf, initial=50.0)
        assert storage.stored == 50.0
        assert math.isnan(storage.fraction)

    def test_infinite_level_requires_infinite_capacity(self):
        with pytest.raises(ValueError):
            IdealStorage(capacity=100.0, initial=math.inf)


class TestIdealStorageDynamics:
    def test_charge(self):
        storage = IdealStorage(capacity=100.0, initial=10.0)
        result = storage.advance(5.0, harvest_power=2.0, draw_power=0.0)
        assert storage.stored == pytest.approx(20.0)
        assert result.stored_delta == pytest.approx(10.0)
        assert result.overflow == 0.0

    def test_discharge(self):
        storage = IdealStorage(capacity=100.0, initial=50.0)
        result = storage.advance(4.0, harvest_power=0.5, draw_power=8.0)
        # eq. (4): EC(t2) = EC(t1) + ES - ED
        assert storage.stored == pytest.approx(50.0 + 2.0 - 32.0)
        assert result.drawn == pytest.approx(32.0)

    def test_overflow_discarded(self):
        """Section 3.2: incoming energy beyond the capacity is discarded."""
        storage = IdealStorage(capacity=100.0, initial=95.0)
        result = storage.advance(10.0, harvest_power=2.0, draw_power=0.0)
        assert storage.stored == 100.0
        assert result.overflow == pytest.approx(15.0)
        assert storage.total_overflow == pytest.approx(15.0)

    def test_depletion_to_exact_zero(self):
        storage = IdealStorage(capacity=100.0, initial=16.0)
        storage.advance(2.0, harvest_power=0.0, draw_power=8.0)
        assert storage.stored == 0.0
        assert storage.is_empty

    def test_draining_below_zero_raises(self):
        """The simulator must split segments at depletion; violating that
        is an accounting bug, not a clamp."""
        storage = IdealStorage(capacity=100.0, initial=1.0)
        with pytest.raises(RuntimeError, match="below zero"):
            storage.advance(1.0, harvest_power=0.0, draw_power=8.0)

    def test_time_to_empty(self):
        storage = IdealStorage(capacity=100.0, initial=15.0)
        assert storage.time_to_empty(0.5, 8.0) == pytest.approx(2.0)

    def test_time_to_empty_when_charging(self):
        storage = IdealStorage(capacity=100.0, initial=15.0)
        assert storage.time_to_empty(2.0, 1.0) == math.inf

    def test_time_to_full(self):
        storage = IdealStorage(capacity=100.0, initial=90.0)
        assert storage.time_to_full(2.0, 0.0) == pytest.approx(5.0)

    def test_time_to_full_when_draining(self):
        storage = IdealStorage(capacity=100.0, initial=90.0)
        assert storage.time_to_full(1.0, 2.0) == math.inf

    def test_infinite_storage_never_empties(self):
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        assert storage.time_to_empty(0.0, 100.0) == math.inf
        result = storage.advance(10.0, harvest_power=0.0, draw_power=5.0)
        assert result.drawn == 50.0
        assert math.isinf(storage.stored)

    def test_total_drawn_accumulates(self):
        storage = IdealStorage(capacity=100.0)
        storage.advance(2.0, 0.0, 10.0)
        storage.advance(3.0, 0.0, 10.0)
        assert storage.total_drawn == pytest.approx(50.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IdealStorage(capacity=10.0).advance(-1.0, 0.0, 0.0)

    def test_negative_powers_rejected(self):
        storage = IdealStorage(capacity=10.0)
        with pytest.raises(ValueError):
            storage.advance(1.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            storage.time_to_empty(0.0, -1.0)


class TestDrawInstant:
    def test_full_withdrawal(self):
        storage = IdealStorage(capacity=100.0, initial=50.0)
        assert storage.draw_instant(20.0) == 20.0
        assert storage.stored == pytest.approx(30.0)

    def test_partial_when_insufficient(self):
        storage = IdealStorage(capacity=100.0, initial=5.0)
        assert storage.draw_instant(20.0) == 5.0
        assert storage.stored == 0.0

    def test_zero_is_noop(self):
        storage = IdealStorage(capacity=100.0, initial=5.0)
        assert storage.draw_instant(0.0) == 0.0
        assert storage.stored == 5.0

    def test_infinite_storage(self):
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        assert storage.draw_instant(1e9) == 1e9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IdealStorage(capacity=10.0).draw_instant(-1.0)


class TestIdealStorageProperties:
    @given(storage_programs())
    @settings(max_examples=100, deadline=None)
    def test_level_always_within_bounds(self, program):
        """Invariant (1): 0 <= EC(t) <= C under any segment program."""
        capacity, initial, segments = program
        storage = IdealStorage(capacity=capacity, initial=initial)
        for duration, harvest, draw in segments:
            # Split at depletion exactly like the simulator does.
            t_empty = storage.time_to_empty(harvest, draw)
            safe = min(duration, t_empty)
            storage.advance(safe, harvest, draw)
            assert -1e-9 <= storage.stored <= capacity + 1e-9

    @given(storage_programs())
    @settings(max_examples=100, deadline=None)
    def test_energy_conservation(self, program):
        """initial + harvested == stored + drawn + overflow (ideal model)."""
        capacity, initial, segments = program
        storage = IdealStorage(capacity=capacity, initial=initial)
        harvested = 0.0
        for duration, harvest, draw in segments:
            t_empty = storage.time_to_empty(harvest, draw)
            safe = min(duration, t_empty)
            storage.advance(safe, harvest, draw)
            harvested += harvest * safe
        balance = (
            storage.stored
            + storage.total_drawn
            + storage.total_overflow
            - initial
            - harvested
        )
        assert balance == pytest.approx(0.0, abs=1e-6 * max(1.0, harvested))


class TestNonIdealStorage:
    def test_charge_efficiency(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=0.0, charge_efficiency=0.5,
            discharge_efficiency=1.0,
        )
        storage.advance(10.0, harvest_power=2.0, draw_power=0.0)
        assert storage.stored == pytest.approx(10.0)

    def test_discharge_efficiency(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=50.0, charge_efficiency=1.0,
            discharge_efficiency=0.5,
        )
        result = storage.advance(2.0, harvest_power=0.0, draw_power=5.0)
        assert result.drawn == pytest.approx(10.0)  # delivered to the load
        assert storage.stored == pytest.approx(50.0 - 20.0)  # store paid double

    def test_leakage_drains_idle_storage(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=10.0, charge_efficiency=1.0,
            discharge_efficiency=1.0, leakage_power=1.0,
        )
        storage.advance(4.0, harvest_power=0.0, draw_power=0.0)
        assert storage.stored == pytest.approx(6.0)
        assert storage.total_leaked == pytest.approx(4.0)

    def test_leakage_stops_at_empty(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=2.0, charge_efficiency=1.0,
            discharge_efficiency=1.0, leakage_power=1.0,
        )
        storage.advance(10.0, harvest_power=0.0, draw_power=0.0)
        assert storage.stored == 0.0
        assert storage.total_leaked == pytest.approx(2.0)

    def test_leakage_capped_by_inflow_when_empty(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=0.0, charge_efficiency=1.0,
            discharge_efficiency=1.0, leakage_power=5.0,
        )
        storage.advance(10.0, harvest_power=1.0, draw_power=0.0)
        assert storage.stored == 0.0
        assert storage.total_leaked == pytest.approx(10.0)

    def test_time_to_empty_includes_losses(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=10.0, charge_efficiency=1.0,
            discharge_efficiency=0.5, leakage_power=1.0,
        )
        # net flow = -5/0.5 - 1 = -11 per unit
        assert storage.time_to_empty(0.0, 5.0) == pytest.approx(10.0 / 11.0)

    def test_draw_instant_pays_discharge_loss(self):
        storage = NonIdealStorage(
            capacity=100.0, initial=10.0, discharge_efficiency=0.5,
        )
        delivered = storage.draw_instant(3.0)
        assert delivered == 3.0
        assert storage.stored == pytest.approx(4.0)

    def test_invalid_efficiencies_rejected(self):
        with pytest.raises(ValueError):
            NonIdealStorage(capacity=10.0, charge_efficiency=0.0)
        with pytest.raises(ValueError):
            NonIdealStorage(capacity=10.0, discharge_efficiency=1.5)

    def test_ideal_limit_matches_ideal_storage(self):
        """eta=1, no leak: behaves exactly like IdealStorage."""
        lossy = NonIdealStorage(
            capacity=50.0, initial=20.0, charge_efficiency=1.0,
            discharge_efficiency=1.0, leakage_power=0.0,
        )
        ideal = IdealStorage(capacity=50.0, initial=20.0)
        for duration, harvest, draw in [(2.0, 3.0, 1.0), (5.0, 0.5, 2.0),
                                        (3.0, 10.0, 0.0)]:
            t_safe = min(
                duration, lossy.time_to_empty(harvest, draw),
                ideal.time_to_empty(harvest, draw),
            )
            lossy.advance(t_safe, harvest, draw)
            ideal.advance(t_safe, harvest, draw)
            assert lossy.stored == pytest.approx(ideal.stored)
