"""Tests for harvest-trace file I/O."""

import numpy as np
import pytest

from repro.energy.source import SolarStochasticSource, TraceSource
from repro.energy.trace_io import (
    TraceFormatError,
    TraceFormatWarning,
    load_power_csv,
    resample_to_quantum,
    save_power_csv,
    source_from_csv,
)


class TestLoadPowerCsv:
    def test_two_columns_with_header(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n0.0,1.5\n2.0,3.0\n5.0,0.5\n")
        times, powers = load_power_csv(path)
        np.testing.assert_allclose(times, [0.0, 2.0, 5.0])
        np.testing.assert_allclose(powers, [1.5, 3.0, 0.5])

    def test_single_column_implies_unit_grid(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0\n2.0\n3.0\n")
        times, powers = load_power_csv(path)
        np.testing.assert_allclose(times, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(powers, [1.0, 2.0, 3.0])

    def test_headerless_two_columns(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,2.0\n1,4.0\n")
        times, powers = load_power_csv(path)
        np.testing.assert_allclose(powers, [2.0, 4.0])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n\n1,2.0\n")
        times, _ = load_power_csv(path)
        assert times.size == 2

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_power_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n")
        with pytest.raises(ValueError, match="no samples"):
            load_power_csv(path)

    def test_negative_power_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n1,-2.0\n")
        with pytest.raises(ValueError, match="finite and >= 0"):
            load_power_csv(path)

    def test_non_increasing_times_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n0,2.0\n")
        with pytest.raises(ValueError, match="strictly increasing"):
            load_power_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n1,2.0,3.0\n")
        with pytest.raises(ValueError, match="columns"):
            load_power_csv(path)


class TestStrictErrors:
    def test_error_names_the_offending_line(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n0,1.0\nbad,2.0\n")
        with pytest.raises(TraceFormatError, match="line 3") as excinfo:
            load_power_csv(path)
        assert excinfo.value.line == 3
        assert excinfo.value.path == str(path)
        assert "non-numeric" in str(excinfo.value)

    def test_file_level_error_has_no_line(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError) as excinfo:
            load_power_csv(path)
        assert excinfo.value.line is None
        assert str(path) in str(excinfo.value)

    def test_is_a_value_error(self, tmp_path):
        # Pre-existing callers catching ValueError keep working.
        assert issubclass(TraceFormatError, ValueError)

    def test_width_mismatch_line_number(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n1,2.0\n3\n")
        with pytest.raises(TraceFormatError, match="line 3") as excinfo:
            load_power_csv(path)
        assert "expected 2 columns, found 1" in str(excinfo.value)

    def test_blank_lines_do_not_shift_line_numbers(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n\n\nnan,2.0\n")
        with pytest.raises(TraceFormatError, match="line 4"):
            load_power_csv(path)


class TestLenientLoading:
    def test_skips_malformed_rows_with_one_warning(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n0,1.0\nbad,2.0\n2,3.0\n3,-4.0\n4,5.0\n")
        with pytest.warns(TraceFormatWarning, match="skipped 2 malformed") as rec:
            times, powers = load_power_csv(path, strict=False)
        np.testing.assert_allclose(times, [0.0, 2.0, 4.0])
        np.testing.assert_allclose(powers, [1.0, 3.0, 5.0])
        assert len(rec) == 1
        assert "line 3" in str(rec[0].message)

    def test_non_monotonic_drops_only_that_row(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n5,2.0\n3,9.0\n6,4.0\n")
        with pytest.warns(TraceFormatWarning):
            times, powers = load_power_csv(path, strict=False)
        np.testing.assert_allclose(times, [0.0, 5.0, 6.0])
        np.testing.assert_allclose(powers, [1.0, 2.0, 4.0])

    def test_all_rows_bad_still_raises(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,bad\n1,nan\n")
        with pytest.raises(TraceFormatError, match="no valid samples"):
            load_power_csv(path, strict=False)

    def test_single_column_lenient_renumbers_kept_rows(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("1.0\nbad\n3.0\n")
        with pytest.warns(TraceFormatWarning):
            times, powers = load_power_csv(path, strict=False)
        np.testing.assert_allclose(times, [0.0, 1.0])
        np.testing.assert_allclose(powers, [1.0, 3.0])

    def test_clean_file_emits_no_warning(self, tmp_path, recwarn):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\n1,2.0\n")
        load_power_csv(path, strict=False)
        assert not [w for w in recwarn if isinstance(w.message, TraceFormatWarning)]

    def test_source_from_csv_passes_strict_through(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1.0\nbad,2.0\n1,3.0\n")
        with pytest.raises(TraceFormatError):
            source_from_csv(path)
        with pytest.warns(TraceFormatWarning):
            source = source_from_csv(path, strict=False)
        assert source.power(0.5) == 1.0


class TestResample:
    def test_uniform_input_passthrough(self):
        times = np.array([0.0, 1.0, 2.0])
        powers = np.array([1.0, 2.0, 3.0])
        binned = resample_to_quantum(times, powers, quantum=1.0, end_time=3.0)
        np.testing.assert_allclose(binned, [1.0, 2.0, 3.0])

    def test_energy_conserved_on_irregular_input(self):
        times = np.array([0.0, 0.5, 2.25])
        powers = np.array([4.0, 1.0, 2.0])
        end = 4.0
        binned = resample_to_quantum(times, powers, quantum=1.0, end_time=end)
        original_energy = 4.0 * 0.5 + 1.0 * 1.75 + 2.0 * 1.75
        assert binned.sum() * 1.0 == pytest.approx(original_energy)

    def test_sub_quantum_spikes_averaged(self):
        # A 0.1-long spike of power 10 inside an otherwise-zero quantum.
        times = np.array([0.0, 0.4, 0.5])
        powers = np.array([0.0, 10.0, 0.0])
        binned = resample_to_quantum(times, powers, quantum=1.0, end_time=1.0)
        assert binned[0] == pytest.approx(1.0)

    def test_coarser_quantum(self):
        times = np.arange(6, dtype=float)
        powers = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        binned = resample_to_quantum(times, powers, quantum=2.0, end_time=6.0)
        np.testing.assert_allclose(binned, [1.0, 2.0, 3.0])

    def test_bad_end_time_rejected(self):
        with pytest.raises(ValueError, match="end_time"):
            resample_to_quantum(
                np.array([0.0, 5.0]), np.array([1.0, 1.0]),
                quantum=1.0, end_time=4.0,
            )

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError, match="quantum"):
            resample_to_quantum(np.array([0.0]), np.array([1.0]), quantum=0.0)


class TestRoundTrip:
    def test_source_from_csv(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n0,1.0\n1,2.0\n2,4.0\n")
        source = source_from_csv(path)
        assert isinstance(source, TraceSource)
        assert source.power(0.5) == 1.0
        assert source.power(2.5) == 4.0

    def test_save_and_reload_preserves_energy(self, tmp_path):
        original = SolarStochasticSource(seed=6)
        path = tmp_path / "snapshot.csv"
        written = save_power_csv(original, path, horizon=200.0)
        assert written == 200
        replay = source_from_csv(path)
        assert replay.energy(0.0, 200.0) == pytest.approx(
            original.energy(0.0, 200.0)
        )
        # Exact per-quantum replay, not just aggregate.
        for t in (0.0, 13.0, 57.0, 199.0):
            assert replay.power(t) == pytest.approx(original.power(t))

    def test_cyclic_replay(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("time,power\n0,1.0\n1,2.0\n")
        source = source_from_csv(path, cyclic=True)
        assert source.power(2.5) == 1.0

    def test_save_invalid_horizon(self, tmp_path):
        with pytest.raises(ValueError):
            save_power_csv(
                SolarStochasticSource(seed=0), tmp_path / "x.csv", horizon=0.0
            )
