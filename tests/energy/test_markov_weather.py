"""Tests for the regime-switching (Markov weather) source."""

import numpy as np
import pytest

from repro.energy.source import MarkovWeatherSource


class TestMarkovWeatherSource:
    def test_deterministic_given_seed(self):
        a = MarkovWeatherSource(seed=4)
        b = MarkovWeatherSource(seed=4)
        ts = np.linspace(0, 800, 200)
        assert [a.power(float(t)) for t in ts] == [
            b.power(float(t)) for t in ts
        ]

    def test_out_of_order_queries_consistent(self):
        a = MarkovWeatherSource(seed=9)
        late = a.power(500.0)
        b = MarkovWeatherSource(seed=9)
        b.power(3.0)
        assert b.power(500.0) == late

    def test_non_negative_and_bounded(self):
        src = MarkovWeatherSource(seed=1, clear_power=8.0)
        values = [src.power(float(t)) for t in range(1000)]
        assert all(0.0 <= v <= 8.0 for v in values)

    def test_constant_within_quantum(self):
        src = MarkovWeatherSource(seed=2)
        assert src.power(5.1) == src.power(5.9)

    def test_regimes_are_persistent(self):
        """With persistence 0.98 the state flips far less often than a
        Bernoulli coin would."""
        src = MarkovWeatherSource(seed=3, persistence=0.98)
        states = [src._state(i) for i in range(2000)]
        flips = sum(1 for a, b in zip(states, states[1:]) if a != b)
        assert flips < 2000 * 0.1  # ~2% expected, 50% for i.i.d.

    def test_expected_regime_length(self):
        src = MarkovWeatherSource(persistence=0.95)
        assert src.expected_regime_length() == pytest.approx(20.0)

    def test_cloudy_attenuates(self):
        src = MarkovWeatherSource(seed=5, cloudy_factor=0.1,
                                  envelope_period=1e9)  # flat envelope
        values = np.array([src.power(float(t)) for t in range(3000)])
        clear = values[values > values.max() * 0.5]
        cloudy = values[(values > 0) & (values <= values.max() * 0.5)]
        assert cloudy.size > 0 and clear.size > 0
        assert cloudy.mean() == pytest.approx(clear.mean() * 0.1, rel=0.05)

    def test_mean_power_matches_empirical(self):
        src = MarkovWeatherSource(seed=6)
        horizon = 40_000.0
        empirical = src.energy(0.0, horizon) / horizon
        assert empirical == pytest.approx(src.mean_power(), rel=0.15)

    def test_energy_additivity(self):
        src = MarkovWeatherSource(seed=7)
        whole = src.energy(10.0, 300.0)
        parts = src.energy(10.0, 130.0) + src.energy(130.0, 300.0)
        assert whole == pytest.approx(parts)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MarkovWeatherSource(clear_power=-1.0)
        with pytest.raises(ValueError):
            MarkovWeatherSource(cloudy_factor=1.5)
        with pytest.raises(ValueError):
            MarkovWeatherSource(persistence=1.0)
        with pytest.raises(ValueError):
            MarkovWeatherSource(envelope_period=0.0)

    def test_end_to_end_simulation(self):
        """EA-DVFS still beats LSA under correlated weather droughts."""
        from repro.cpu.presets import xscale_pxa
        from repro.energy.predictor import ProfilePredictor
        from repro.energy.storage import IdealStorage
        from repro.sched.registry import make_scheduler
        from repro.sim.simulator import (
            HarvestingRtSimulator,
            SimulationConfig,
        )
        from repro.tasks.workload import generate_paper_taskset

        scale = xscale_pxa()
        misses = {}
        for name in ("lsa", "ea-dvfs"):
            total_missed = total_judged = 0
            for seed in range(3):
                source = MarkovWeatherSource(seed=seed)
                taskset = generate_paper_taskset(
                    n_tasks=5, utilization=0.4, seed=seed,
                    mean_harvest_power=source.mean_power(),
                    max_power=scale.max_power,
                )
                sim = HarvestingRtSimulator(
                    taskset=taskset,
                    source=MarkovWeatherSource(seed=seed),
                    storage=IdealStorage(capacity=150.0),
                    scheduler=make_scheduler(name, scale),
                    predictor=ProfilePredictor(period=400.0, n_bins=32),
                    config=SimulationConfig(horizon=4000.0),
                )
                result = sim.run()
                total_missed += result.missed_count
                total_judged += result.judged_count
            misses[name] = total_missed / total_judged
        assert misses["ea-dvfs"] <= misses["lsa"]
