"""Unit tests for the harvest predictors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.predictor import (
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.source import ConstantSource, SolarStochasticSource, TraceSource


class TestOraclePredictor:
    def test_matches_source_exactly(self):
        source = SolarStochasticSource(seed=4)
        oracle = OraclePredictor(source)
        assert oracle.predict_energy(10.0, 60.0) == pytest.approx(
            source.energy(10.0, 60.0)
        )

    def test_observe_is_noop(self):
        source = ConstantSource(1.0)
        oracle = OraclePredictor(source)
        oracle.observe(0.0, 10.0, 123.0)
        assert oracle.predict_energy(0.0, 10.0) == pytest.approx(10.0)


class TestMeanPowerPredictor:
    def test_initial_estimate(self):
        predictor = MeanPowerPredictor(initial_power=2.0)
        assert predictor.predict_energy(0.0, 5.0) == pytest.approx(10.0)

    def test_converges_to_constant(self):
        predictor = MeanPowerPredictor(initial_power=0.0, alpha=0.2)
        for k in range(200):
            predictor.observe(float(k), float(k + 1), 3.0)
        assert predictor.estimate == pytest.approx(3.0, rel=1e-3)

    def test_duration_correct_decay(self):
        """One 10-unit observation equals ten 1-unit observations."""
        chunky = MeanPowerPredictor(initial_power=5.0, alpha=0.1)
        chunky.observe(0.0, 10.0, 20.0)  # mean power 2 over 10 units
        fine = MeanPowerPredictor(initial_power=5.0, alpha=0.1)
        for k in range(10):
            fine.observe(float(k), float(k + 1), 2.0)
        assert chunky.estimate == pytest.approx(fine.estimate)

    def test_zero_duration_ignored(self):
        predictor = MeanPowerPredictor(initial_power=1.0)
        predictor.observe(5.0, 5.0, 0.0)
        assert predictor.estimate == 1.0

    def test_reset(self):
        predictor = MeanPowerPredictor(initial_power=1.5, alpha=0.5)
        predictor.observe(0.0, 1.0, 10.0)
        predictor.reset()
        assert predictor.estimate == 1.5

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            MeanPowerPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            MeanPowerPredictor(alpha=1.5)

    @given(st.floats(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_prediction_nonnegative(self, power):
        predictor = MeanPowerPredictor()
        duration = 1.0
        predictor.observe(0.0, duration, power * duration)
        assert predictor.predict_energy(1.0, 11.0) >= 0.0


class TestLastValuePredictor:
    def test_persists_last_observation(self):
        predictor = LastValuePredictor()
        predictor.observe(0.0, 2.0, 8.0)  # mean power 4
        assert predictor.predict_energy(2.0, 5.0) == pytest.approx(12.0)

    def test_overwrites(self):
        predictor = LastValuePredictor(initial_power=1.0)
        predictor.observe(0.0, 1.0, 7.0)
        predictor.observe(1.0, 2.0, 1.0)
        assert predictor.predict_energy(0.0, 1.0) == pytest.approx(1.0)

    def test_reset(self):
        predictor = LastValuePredictor(initial_power=2.0)
        predictor.observe(0.0, 1.0, 9.0)
        predictor.reset()
        assert predictor.predict_energy(0.0, 1.0) == pytest.approx(2.0)


class TestEmptyWindowContract:
    """Every predictor returns exactly 0.0 on a sub-EPSILON window.

    Regression: ProfilePredictor used to return 0.0 while Mean/Last
    returned ``estimate * (t1 - t0)`` — one contract now, applied
    identically in the scalar predictors and the batch kernels.
    """

    @pytest.fixture(params=["oracle", "profile", "mean", "last-value"])
    def predictor(self, request):
        if request.param == "oracle":
            return OraclePredictor(ConstantSource(3.0))
        if request.param == "profile":
            p = ProfilePredictor(period=10.0, n_bins=4, initial_power=2.0)
            p.observe(0.0, 10.0, 50.0)
            return p
        if request.param == "mean":
            return MeanPowerPredictor(initial_power=2.0)
        return LastValuePredictor(initial_power=2.0)

    def test_zero_width_window(self, predictor):
        assert predictor.predict_energy(5.0, 5.0) == 0.0

    def test_sub_epsilon_window(self, predictor):
        assert predictor.predict_energy(5.0, 5.0 + 1e-10) == 0.0  # repro-lint: disable=RPR101 -- empty-window contract is exactly 0.0

    def test_above_epsilon_window_is_nonzero(self, predictor):
        assert predictor.predict_energy(5.0, 5.0 + 1e-6) > 0.0  # repro-lint: disable=RPR101 -- any nonzero estimate counts

    def test_reversed_window_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict_energy(5.0, 4.0)


class TestProfilePredictor:
    def test_unseen_bins_use_initial_power(self):
        predictor = ProfilePredictor(period=100.0, n_bins=10, initial_power=2.0)
        assert predictor.predict_energy(0.0, 50.0) == pytest.approx(100.0)

    def test_learns_a_two_level_profile(self):
        """A square-wave source should be learned bin by bin."""
        predictor = ProfilePredictor(period=10.0, n_bins=2, alpha=1.0)
        # First half of each cycle: power 4; second half: power 0.
        for cycle in range(5):
            base = cycle * 10.0
            predictor.observe(base, base + 5.0, 20.0)
            predictor.observe(base + 5.0, base + 10.0, 0.0)
        assert predictor.predict_energy(50.0, 55.0) == pytest.approx(20.0)
        assert predictor.predict_energy(55.0, 60.0) == pytest.approx(0.0)
        assert predictor.predict_energy(50.0, 60.0) == pytest.approx(20.0)

    def test_prediction_spans_multiple_cycles(self):
        predictor = ProfilePredictor(period=10.0, n_bins=2, alpha=1.0)
        predictor.observe(0.0, 5.0, 10.0)
        predictor.observe(5.0, 10.0, 0.0)
        assert predictor.predict_energy(0.0, 30.0) == pytest.approx(30.0)

    def test_partial_bin_prorated(self):
        predictor = ProfilePredictor(period=10.0, n_bins=2, alpha=1.0)
        predictor.observe(0.0, 5.0, 10.0)  # bin 0 at power 2
        assert predictor.predict_energy(1.0, 2.5) == pytest.approx(3.0)

    def test_tracks_solar_envelope(self):
        """After a few cycles the profile beats a flat-mean guess."""
        source = SolarStochasticSource(seed=11)
        profile = ProfilePredictor()
        mean = MeanPowerPredictor(alpha=0.05)
        t = 0.0
        while t < 3 * profile.period:
            e = source.energy(t, t + 1.0)
            profile.observe(t, t + 1.0, e)
            mean.observe(t, t + 1.0, e)
            t += 1.0
        # Compare predictions over the next half cycle against the truth.
        horizon = (t, t + profile.period / 2)
        truth = source.energy(*horizon)
        profile_err = abs(profile.predict_energy(*horizon) - truth)
        mean_err = abs(mean.predict_energy(*horizon) - truth)
        assert profile_err < mean_err

    def test_observation_spanning_bin_boundary(self):
        predictor = ProfilePredictor(period=10.0, n_bins=2, alpha=1.0)
        predictor.observe(4.0, 6.0, 8.0)  # power 4 across both bins
        assert predictor.predict_energy(0.0, 5.0) == pytest.approx(20.0)
        assert predictor.predict_energy(5.0, 10.0) == pytest.approx(20.0)

    def test_reset_clears_bins(self):
        predictor = ProfilePredictor(period=10.0, n_bins=2, alpha=1.0,
                                     initial_power=1.0)
        predictor.observe(0.0, 10.0, 100.0)
        predictor.reset()
        assert predictor.predict_energy(0.0, 10.0) == pytest.approx(10.0)

    def test_bin_estimates_copy(self):
        predictor = ProfilePredictor(period=10.0, n_bins=4)
        estimates = predictor.bin_estimates()
        estimates[:] = 99.0
        assert predictor.predict_energy(0.0, 10.0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProfilePredictor(period=0.0)
        with pytest.raises(ValueError):
            ProfilePredictor(n_bins=0)
        with pytest.raises(ValueError):
            ProfilePredictor(alpha=2.0)
        with pytest.raises(ValueError):
            ProfilePredictor(initial_power=-1.0)

    def test_segment_sliver_attributed_to_starting_bin(self):
        # Regression: a window starting one ulp below a bin edge used to
        # over-cover (durations summed past t1 - t0) and charge the
        # sliver to the *next* bin.  The sliver belongs to the bin that
        # contains t0, and the durations must sum bit-exactly.
        predictor = ProfilePredictor(period=10.0, n_bins=4)
        t0 = 2.5 - 1e-15
        t1 = 5.0
        segments = list(predictor._segments(t0, t1))
        assert [index for index, _ in segments] == [0, 1]
        sliver, rest = segments[0][1], segments[1][1]
        assert 0.0 < sliver < 1e-14
        assert sliver + rest == t1 - t0

    @given(
        t0=st.floats(min_value=0, max_value=1000),
        span=st.floats(min_value=1e-8, max_value=300),
        nudge=st.integers(min_value=-3, max_value=3),
        period=st.sampled_from([10.0, 37.0, 690.9, 0.125]),
        n_bins=st.sampled_from([1, 2, 4, 8, 48]),
    )
    @settings(max_examples=200, deadline=None)
    def test_segments_cover_window_exactly(
        self, t0, span, nudge, period, n_bins
    ):
        # Adversarial starts: nudge t0 to sit a few ulps around a bin
        # edge, where the old stagnation guard lost or double-counted
        # slivers.
        predictor = ProfilePredictor(period=period, n_bins=n_bins)
        bin_width = predictor.bin_width
        edge = math.floor((t0 % period) / bin_width) * bin_width
        base = (t0 // period) * period + edge
        for _ in range(abs(nudge)):
            base = math.nextafter(
                base, math.inf if nudge > 0 else -math.inf
            )
        t0 = max(0.0, base)
        t1 = t0 + span
        segments = list(predictor._segments(t0, t1))
        # Exact coverage: a genuine sequential sum of the durations
        # reproduces t1 - t0 bit-for-bit (this is the running sum the
        # observe/predict loops perform).
        covered = 0.0
        for index, duration in segments:
            assert 0 <= index < n_bins
            assert duration > 0.0  # repro-lint: disable=RPR101 -- zero-length segments must never be yielded
            covered += duration
        assert covered == t1 - t0
        # Attribution: the first segment starts at t0, so it must be
        # charged to the bin containing t0.
        first_bin = min(int((t0 % period) / bin_width), n_bins - 1)
        assert segments[0][0] == first_bin

    def test_segments_empty_below_epsilon(self):
        predictor = ProfilePredictor(period=10.0, n_bins=4)
        assert list(predictor._segments(5.0, 5.0)) == []
        assert list(predictor._segments(5.0, 5.0 + 1e-10)) == []

    @given(
        t0=st.floats(min_value=0, max_value=500),
        span=st.floats(min_value=0, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_prediction_additivity(self, t0, span):
        predictor = ProfilePredictor(period=37.0, n_bins=8, alpha=0.5)
        source = TraceSource([3.0, 1.0, 4.0, 1.0, 5.0], cyclic=True)
        t = 0.0
        while t < 100.0:
            predictor.observe(t, t + 1.0, source.energy(t, t + 1.0))
            t += 1.0
        mid = t0 + span / 3
        whole = predictor.predict_energy(t0, t0 + span)
        parts = predictor.predict_energy(t0, mid) + predictor.predict_energy(
            mid, t0 + span
        )
        assert whole == pytest.approx(parts, rel=1e-6, abs=1e-6)
