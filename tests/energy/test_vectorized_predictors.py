"""Differential tests: batch predictor kernels vs the scalar predictors.

The doctrine (``docs/batch-simulation.md``): every kernel in
:mod:`repro.energy.vectorized` performs the same IEEE float64 operations
in the same order as its scalar counterpart, so estimates, bin walks and
predicted energies must be *bit-identical* — not merely close.  All
assertions here are exact equality on floats by design.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.predictor import (
    LastValuePredictor,
    MeanPowerPredictor,
    ProfilePredictor,
    profile_segments,
)
from repro.energy.vectorized import (
    _libm_pow,
    batch_last_observe,
    batch_mean_observe,
    batch_profile_observe,
    batch_profile_predict,
    batch_span_predict,
)
from repro.timeutils import EPSILON

# Heterogeneous lane parameter pools (mirrors the worlds the batch
# engine actually builds: paper setup, scenario pool, unit scales).
_PERIODS = (10.0, 690.8861930260637, 3.3, 1e3, 0.125)
_N_BINS = (1, 4, 16, 64)
_ALPHAS = (0.3, 0.05, 1.0)
_INITIALS = (0.0, 1.5)


def _window_strategy(max_duration=900.0):
    # Observation windows: normal, sub-EPSILON and zero durations, so
    # the scalar observe gate and the batch pre-filter stay in lockstep.
    # Profile tests cap the duration: a lane with a tiny period walks
    # one ladder step per bin crossing, so long windows are O(span/bw).
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2000.0),
            st.one_of(
                st.floats(min_value=1e-6, max_value=max_duration),
                st.floats(min_value=0.0, max_value=1e-10),
            ),
            st.floats(min_value=-1.0, max_value=8.0),
        ),
        min_size=1,
        max_size=12,
    )


class TestLibmPow:
    def test_matches_python_pow_bitwise(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.0, 1.0, size=5000)
        expo = rng.uniform(0.0, 30.0, size=5000)
        out = _libm_pow(base, expo)
        for b, e, o in zip(base.tolist(), expo.tolist(), out.tolist()):
            assert o == b**e

    def test_array_power_is_not_trusted(self):
        # Documents WHY _libm_pow exists: numpy's vectorized np.power
        # takes a SIMD path that deviates from libm pow by one ulp on a
        # few percent of inputs (observed on numpy 2.4.6).  If this test
        # ever fails, np.power became bit-compatible and _libm_pow can
        # be retired.
        rng = np.random.default_rng(1)
        base = rng.uniform(0.0, 1.0, size=20000)
        expo = rng.uniform(0.0, 30.0, size=20000)
        simd = np.power(base, expo)
        libm = _libm_pow(base, expo)
        assert (simd != libm).any()


class TestSpanPredict:
    def test_empty_window_contract(self):
        estimate = np.asarray([2.0, 2.0, 2.0])
        t0 = np.asarray([5.0, 5.0, 5.0])
        t1 = np.asarray([5.0, 5.0 + 1e-10, 6.0])
        out = batch_span_predict(estimate, t0, t1)
        assert out[0] == 0.0
        assert out[1] == 0.0
        assert out[2] == 2.0 * (t1[2] - t0[2])

    @given(windows=_window_strategy())
    @settings(max_examples=60, deadline=None)
    def test_mean_lanes_bit_equal_scalar(self, windows):
        lanes = [
            MeanPowerPredictor(initial_power=init, alpha=alpha)
            for alpha in _ALPHAS
            for init in _INITIALS
        ]
        n = len(lanes)
        estimate = np.asarray([p.estimate for p in lanes])
        alpha = np.asarray([p.alpha for p in lanes])
        for t0, dur, power in windows:
            t1 = t0 + dur
            energy = power * dur
            for p in lanes:
                p.observe(t0, t1, energy)
            duration = np.full(n, t1 - t0)
            obs = duration > EPSILON  # the batch caller's pre-filter
            if obs.any():
                estimate[obs] = batch_mean_observe(
                    estimate[obs],
                    alpha[obs],
                    duration[obs],
                    np.full(n, energy)[obs],
                )
            for i, p in enumerate(lanes):
                assert estimate[i] == p.estimate
        q0 = np.full(n, 3.0)
        q1 = np.full(n, 47.5)
        predicted = batch_span_predict(estimate, q0, q1)
        for i, p in enumerate(lanes):
            assert predicted[i] == p.predict_energy(3.0, 47.5)

    @given(windows=_window_strategy())
    @settings(max_examples=60, deadline=None)
    def test_last_lanes_bit_equal_scalar(self, windows):
        lanes = [LastValuePredictor(initial_power=init) for init in _INITIALS]
        n = len(lanes)
        estimate = np.asarray([p.estimate for p in lanes])
        for t0, dur, power in windows:
            t1 = t0 + dur
            energy = power * dur
            for p in lanes:
                p.observe(t0, t1, energy)
            duration = np.full(n, t1 - t0)
            obs = duration > EPSILON
            if obs.any():
                estimate[obs] = batch_last_observe(
                    duration[obs], np.full(n, energy)[obs]
                )
            for i, p in enumerate(lanes):
                assert estimate[i] == p.estimate


class _ProfileLanes:
    """Scalar ProfilePredictors + their SoA mirror, padded to max_bins."""

    def __init__(self):
        self.scalars = [
            ProfilePredictor(
                period=period, n_bins=nb, alpha=alpha, initial_power=init
            )
            for period, nb, alpha, init in zip(
                _PERIODS * 4,
                _N_BINS * 5,
                _ALPHAS * 7,
                _INITIALS * 10,
            )
        ]
        n = len(self.scalars)
        self.period = np.asarray([p.period for p in self.scalars])
        self.bin_width = np.asarray([p.bin_width for p in self.scalars])
        self.n_bins = np.asarray(
            [p.n_bins for p in self.scalars], dtype=np.int64
        )
        self.alpha = np.asarray([p.alpha for p in self.scalars])
        max_bins = int(self.n_bins.max())
        self.estimates = np.zeros((n, max_bins))
        self.seen = np.zeros((n, max_bins), dtype=np.bool_)
        for i, p in enumerate(self.scalars):
            self.estimates[i, : p.n_bins] = p.bin_estimates()
            self.seen[i, : p.n_bins] = p.bin_seen()

    def observe(self, t0: float, t1: float, energy: float) -> None:
        for p in self.scalars:
            p.observe(t0, t1, energy)
        n = len(self.scalars)
        a0 = np.full(n, t0)
        a1 = np.full(n, t1)
        obs = a1 - a0 > EPSILON  # the batch caller's pre-filter
        if obs.any():
            rows = np.flatnonzero(obs)
            sub_est = self.estimates[rows]
            sub_seen = self.seen[rows]
            batch_profile_observe(
                a0[rows],
                a1[rows],
                self.period[rows],
                self.bin_width[rows],
                self.n_bins[rows],
                self.alpha[rows],
                np.full(n, energy)[rows],
                sub_est,
                sub_seen,
            )
            self.estimates[rows] = sub_est
            self.seen[rows] = sub_seen

    def assert_state_bit_equal(self) -> None:
        for i, p in enumerate(self.scalars):
            scalar_est = p.bin_estimates()
            scalar_seen = p.bin_seen()
            for b in range(p.n_bins):
                assert self.estimates[i, b] == scalar_est[b]
                assert bool(self.seen[i, b]) == bool(scalar_seen[b])

    def assert_predict_bit_equal(self, t0: float, t1: float) -> None:
        n = len(self.scalars)
        predicted = batch_profile_predict(
            np.full(n, t0),
            np.full(n, t1),
            self.period,
            self.bin_width,
            self.n_bins,
            self.estimates,
        )
        for i, p in enumerate(self.scalars):
            assert predicted[i] == p.predict_energy(t0, t1)


class TestProfileKernels:
    @given(windows=_window_strategy(max_duration=10.0))
    @settings(max_examples=25, deadline=None)
    def test_heterogeneous_lanes_bit_equal_scalar(self, windows):
        lanes = _ProfileLanes()
        for t0, dur, power in windows:
            lanes.observe(t0, t0 + dur, power * dur)
            lanes.assert_state_bit_equal()
        lanes.assert_predict_bit_equal(1.0, 1.0)  # empty window -> 0.0
        lanes.assert_predict_bit_equal(2.5 - 1e-15, 5.0)  # sliver start
        lanes.assert_predict_bit_equal(0.0, 40.0)  # many small-period cycles

    def test_window_spanning_multiple_periods(self):
        # Spans longer than the period revisit bins; the repeated EWMA
        # updates must land in walk order, exactly like the scalar loop.
        lanes = _ProfileLanes()
        lanes.observe(0.0, 300.0, 450.0)
        lanes.assert_state_bit_equal()
        lanes.assert_predict_bit_equal(0.5, 250.0)

    def test_sub_epsilon_lanes_untouched(self):
        # Windows no longer than EPSILON predict 0.0 and (behind the
        # caller's pre-filter) leave the bin state untouched — the
        # scalar empty-window gate.
        t0 = np.asarray([5.0, 5.0])
        t1 = np.asarray([5.0 + 1e-10, 5.0])
        period = np.asarray([10.0, 10.0])
        bin_width = np.asarray([2.5, 2.5])
        n_bins = np.asarray([4, 4], dtype=np.int64)
        estimates = np.full((2, 4), 3.0)
        out = batch_profile_predict(
            t0, t1, period, bin_width, n_bins, estimates
        )
        assert out.tolist() == [0.0, 0.0]

    def test_kernels_share_the_scalar_walk(self):
        # The kernels run repro.energy.predictor.profile_segments per
        # lane — one walk implementation, so the engines cannot drift.
        # Spot-check the shared generator against the bound method.
        p = ProfilePredictor(period=37.0, n_bins=8)
        method = list(p._segments(1.3, 55.9))
        shared = list(
            profile_segments(1.3, 55.9, p.period, p.bin_width, p.n_bins)
        )
        assert method == shared


class TestMeanObserveEdgeCases:
    def test_negative_energy_clamped(self):
        scalar = MeanPowerPredictor(initial_power=2.0, alpha=0.3)
        scalar.observe(0.0, 1.0, -5.0)
        out = batch_mean_observe(
            np.asarray([2.0]),
            np.asarray([0.3]),
            np.asarray([1.0]),
            np.asarray([-5.0]),
        )
        assert out[0] == scalar.estimate

    def test_alpha_one_jumps_to_observation(self):
        out = batch_mean_observe(
            np.asarray([7.0]),
            np.asarray([1.0]),
            np.asarray([2.0]),
            np.asarray([6.0]),
        )
        assert out[0] == 3.0
