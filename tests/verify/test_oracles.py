"""Decision oracles, degeneracy identities, and trace re-checks."""

import math

import pytest

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.core.slowdown import compute_plan
from repro.cpu.presets import stretch_example_scale, xscale_pxa
from repro.sched.base import Decision
from repro.sim.simulator import DeadlineMissPolicy
from repro.verify import (
    OracleCheckedScheduler,
    OracleViolationError,
    check_accounting,
    check_causality,
    check_energy_conservation,
    compare_schedules,
    random_scenario,
    recompute_plan,
)
from repro.verify.scenarios import ScenarioSpec, TaskParams


class TestRecomputePlan:
    """The independent oracle arithmetic against the production plan."""

    @pytest.mark.parametrize("scale_fn", [xscale_pxa, stretch_example_scale])
    @pytest.mark.parametrize("energy", [0.0, 1.0, 7.5, 40.0, math.inf])
    @pytest.mark.parametrize("work,window", [
        (1.0, 10.0), (5.0, 6.0), (9.999, 10.0), (12.0, 10.0), (0.0, 5.0),
    ])
    def test_matches_production_plan(self, scale_fn, energy, work, window):
        scale = scale_fn()
        now, deadline = 3.0, 3.0 + window
        oracle = recompute_plan(now, deadline, work, energy, scale)
        plan = compute_plan(
            now=now, deadline=deadline, remaining_work=work,
            available_energy=energy, scale=scale,
        )
        if oracle.feasible_level is None:
            assert not plan.deadline_reachable
            return
        assert plan.deadline_reachable
        assert oracle.s1 == plan.s1
        assert oracle.s2 == plan.s2

    def test_unreachable_deadline(self):
        oracle = recompute_plan(0.0, 5.0, 10.0, 100.0, xscale_pxa())
        assert oracle.feasible_level is None

    def test_negative_window(self):
        oracle = recompute_plan(10.0, 5.0, 1.0, 100.0, xscale_pxa())
        assert oracle.feasible_level is None

    def test_infinite_energy_collapses_to_now(self):
        oracle = recompute_plan(2.0, 12.0, 4.0, math.inf, xscale_pxa())
        assert oracle.s1 == 2.0
        assert oracle.s2 == 2.0

    def test_scarce_energy_orders_s1_before_s2(self):
        scale = stretch_example_scale()
        oracle = recompute_plan(0.0, 10.0, 2.0, 8.0, scale)
        assert oracle.feasible_level is not None
        assert oracle.feasible_level.speed < 1.0
        assert oracle.s1 <= oracle.s2


class _SabotagedScheduler(EaDvfsScheduler):  # repro-lint: disable=RPR301 -- deliberately malformed test double
    """EA-DVFS that ignores the slow-down plan — the oracle must notice."""

    def decide(self, now, ready, outlook):
        job = ready.peek()
        if job is None:
            return Decision.idle()
        return Decision.run(job, self._scale.max_level)


class TestOracleCheckedScheduler:
    def test_rejects_foreign_schedulers(self):
        from repro.sched.lsa import LazyScheduler

        with pytest.raises(TypeError, match="EaDvfsScheduler"):
            OracleCheckedScheduler(LazyScheduler(xscale_pxa()))

    def test_clean_run_checks_every_decision(self):
        spec = random_scenario(3, allow_faults=False)
        wrapped = OracleCheckedScheduler(EaDvfsScheduler(spec.scale()))
        spec.run(wrapped)
        assert wrapped.checked_decisions > 0

    def test_clean_run_without_slowdown(self):
        spec = random_scenario(5, allow_faults=False)
        wrapped = OracleCheckedScheduler(
            EaDvfsScheduler(spec.scale(), slowdown=False)
        )
        spec.run(wrapped)
        assert wrapped.checked_decisions > 0

    def test_sabotaged_scheduler_is_caught(self):
        """A policy that never slows down must trip the oracle on an
        energy-scarce world."""
        spec = ScenarioSpec(
            seed=0,
            tasks=(TaskParams(period=10.0, wcet=6.0),),
            source_kind="constant",
            capacity=6.0,
            predictor_kind="oracle",
            horizon=200.0,
        )
        wrapped = OracleCheckedScheduler(_SabotagedScheduler(spec.scale()))
        with pytest.raises(OracleViolationError) as excinfo:
            spec.run(wrapped)
        violation = excinfo.value.violation
        assert violation.expected != violation.actual
        assert "oracle" in violation.context


@pytest.mark.differential
class TestDegeneracyOracles:
    """The paper's two equivalence claims, as schedule-identity tests."""

    @pytest.mark.parametrize("seed", range(8))
    def test_infinite_storage_is_plain_edf(self, seed):
        spec = random_scenario(seed).with_infinite_storage()
        result_ea = spec.run("ea-dvfs")
        result_edf = spec.run("edf")
        assert compare_schedules(
            result_ea, result_edf, label_a="ea-dvfs", label_b="edf"
        ) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_slowdown_disabled_is_lsa(self, seed):
        spec = random_scenario(seed)
        result_nosd = spec.run("ea-dvfs-noslowdown")
        result_lsa = spec.run("lsa")
        assert compare_schedules(
            result_nosd, result_lsa,
            label_a="ea-dvfs-noslowdown", label_b="lsa",
        ) == []

    def test_compare_schedules_detects_differences(self):
        """Different schedulers on a scarce world must NOT be identical —
        guards against a vacuously-passing comparator."""
        spec = ScenarioSpec(
            seed=1,
            tasks=(TaskParams(period=10.0, wcet=6.0),),
            source_kind="constant",
            capacity=6.0,
            predictor_kind="oracle",
            horizon=200.0,
        )
        result_ea = spec.run("ea-dvfs")
        result_edf = spec.run("edf")
        assert compare_schedules(result_ea, result_edf) != []


class TestTraceChecks:
    def _clean_run(self, seed=7):
        spec = random_scenario(seed, allow_faults=False)
        return spec, spec.run("ea-dvfs")

    def test_clean_run_passes_all_checks(self):
        spec, result = self._clean_run()
        policy = DeadlineMissPolicy(spec.miss_policy)
        assert check_energy_conservation(result, spec.capacity) == []
        assert check_causality(result, policy) == []
        assert check_accounting(result, policy) == []

    def test_conservation_flags_ledger_drift(self):
        spec, result = self._clean_run()
        problems = check_energy_conservation(
            result, initial_stored=spec.capacity + 25.0
        )
        assert any("ledger" in p for p in problems)

    def test_conservation_skips_ledger_when_lossy(self):
        spec, result = self._clean_run()
        assert check_energy_conservation(
            result, initial_stored=spec.capacity + 25.0, lossless=False
        ) == []
