"""The differential harness and its report structure."""

import pytest

from repro.verify import (
    CHECK_NAMES,
    DifferentialReport,
    Discrepancy,
    run_differential,
    run_scenario_checks,
)
from repro.verify.scenarios import random_scenario


@pytest.mark.differential
class TestDifferentialSweep:
    def test_clean_sweep(self):
        report = run_differential(n=12, seed=0)
        assert report.ok
        assert report.discrepancies == []
        assert report.minimal_seed is None
        assert report.n_scenarios == 12
        assert report.checks_run == 12 * len(CHECK_NAMES)
        assert report.simulations_run >= 12 * 5

    def test_clean_sweep_without_faults(self):
        report = run_differential(n=6, seed=100, allow_faults=False)
        assert report.ok

    def test_progress_callback(self):
        seen = []
        run_differential(n=3, seed=0, progress=lambda i, n: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_single_scenario_checks(self):
        spec = random_scenario(0)
        discrepancies, checks, sims = run_scenario_checks(spec)
        assert discrepancies == []
        assert checks == len(CHECK_NAMES)
        assert sims >= 5

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_differential(n=0)


class TestReportFormatting:
    def _failing_report(self):
        report = DifferentialReport(n_scenarios=5, base_seed=10)
        report.checks_run = 20
        report.simulations_run = 25
        report.discrepancies = [
            Discrepancy(seed=14, check="oracle", detail="wrong level",
                        scenario="seed=14 ..."),
            Discrepancy(seed=12, check="lsa-degeneracy",
                        detail="job t0-3 diverged", scenario="seed=12 ..."),
        ]
        return report

    def test_minimal_seed_is_smallest(self):
        assert self._failing_report().minimal_seed == 12

    def test_format_lists_discrepancies(self):
        text = self._failing_report().format_text()
        assert "2 DISCREPANCIES" in text
        assert "wrong level" in text
        assert "minimal reproducing seed: 12" in text
        assert "random_scenario(14)" in text

    def test_clean_format(self):
        report = DifferentialReport(n_scenarios=2, base_seed=0)
        assert "no discrepancies" in report.format_text()
