"""The shared Hypothesis strategy library."""

import pytest
from hypothesis import given, settings

from repro.sched.registry import available_schedulers
from repro.verify.strategies import (
    FUZZED_SCHEDULERS,
    scenario_specs,
    scheduler_names,
    seeds,
    storage_programs,
    task_counts,
    task_params_lists,
    utilizations,
)


class TestScalarStrategies:
    @given(seed=seeds(50), n=task_counts(6), u=utilizations())
    @settings(max_examples=25, deadline=None)
    def test_scalar_ranges(self, seed, n, u):
        assert 0 <= seed <= 50
        assert 1 <= n <= 6
        assert 0.05 <= u <= 1.0

    @given(name=scheduler_names())
    @settings(max_examples=10, deadline=None)
    def test_scheduler_names_are_registered(self, name):
        assert name in available_schedulers()

    def test_fuzzed_schedulers_are_registered(self):
        assert set(FUZZED_SCHEDULERS) <= set(available_schedulers())


class TestStoragePrograms:
    @given(program=storage_programs())
    @settings(max_examples=30, deadline=None)
    def test_program_shape(self, program):
        capacity, initial, segments = program
        assert 10.0 <= capacity <= 1000.0
        assert 0.0 <= initial <= capacity
        assert 1 <= len(segments) <= 20
        for duration, harvest, draw in segments:
            assert duration >= 0.0
            assert harvest >= 0.0
            assert draw >= 0.0


class TestScenarioSpecs:
    @given(spec=scenario_specs())
    @settings(max_examples=30, deadline=None)
    def test_specs_are_valid_and_buildable(self, spec):
        # Construction already validated the spec; the builders must not
        # reject what the strategy produced.
        assert spec.total_utilization <= 1.0 + 1e-9
        spec.build_taskset()
        spec.build_storage()
        source = spec.build_source()
        spec.build_predictor(source)

    @given(spec=scenario_specs(allow_faults=False))
    @settings(max_examples=20, deadline=None)
    def test_no_faults_variant(self, spec):
        assert not spec.faults.any_active

    @pytest.mark.differential
    @given(spec=scenario_specs(allow_faults=False))
    @settings(max_examples=10, deadline=None)
    def test_specs_simulate(self, spec):
        result = spec.run("ea-dvfs")
        assert result.horizon == spec.horizon

    @given(tasks=task_params_lists())
    @settings(max_examples=25, deadline=None)
    def test_task_params_schedulable(self, tasks):
        assert sum(p.wcet / p.period for p in tasks) <= 1.0 + 1e-9
