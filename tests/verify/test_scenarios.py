"""Seeded scenario generation and its builders."""

import math

import pytest

from repro.faults import OverrunWorkload
from repro.sim.simulator import SimulationResult
from repro.verify.scenarios import (
    FaultPlan,
    ScenarioSpec,
    TaskParams,
    random_scenario,
)


class TestRandomScenario:
    def test_deterministic_per_seed(self):
        assert random_scenario(17) == random_scenario(17)
        assert random_scenario(17) != random_scenario(18)

    def test_no_faults_flag(self):
        for seed in range(30):
            spec = random_scenario(seed, allow_faults=False)
            assert not spec.faults.any_active

    def test_fault_mix_is_nontrivial(self):
        specs = [random_scenario(seed) for seed in range(60)]
        faulted = sum(1 for spec in specs if spec.faults.any_active)
        assert 0 < faulted < len(specs)

    def test_utilization_within_bounds(self):
        for seed in range(40):
            spec = random_scenario(seed)
            assert spec.total_utilization <= 1.0 + 1e-9


class TestScenarioSpecValidation:
    def test_requires_tasks(self):
        with pytest.raises(ValueError, match="at least one task"):
            ScenarioSpec(seed=0, tasks=())

    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError, match="unknown source kind"):
            ScenarioSpec(
                seed=0, tasks=(TaskParams(10.0, 1.0),), source_kind="wind"
            )

    def test_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown source fault"):
            FaultPlan(source_fault="meteor")

    def test_rejects_spikes_on_infinite_storage(self):
        with pytest.raises(ValueError, match="finite capacity"):
            ScenarioSpec(
                seed=0,
                tasks=(TaskParams(10.0, 1.0),),
                capacity=math.inf,
                faults=FaultPlan(storage_spikes=True),
            )


class TestBuilders:
    def test_builders_return_fresh_objects(self):
        spec = random_scenario(4)
        assert spec.build_source() is not spec.build_source()
        assert spec.build_storage() is not spec.build_storage()

    def test_overrun_wraps_taskset(self):
        spec = ScenarioSpec(
            seed=0,
            tasks=(TaskParams(10.0, 1.0),),
            faults=FaultPlan(overrun=True),
        )
        assert isinstance(spec.build_taskset(), OverrunWorkload)

    def test_run_round_trip(self):
        spec = random_scenario(2, allow_faults=False)
        result = spec.run("edf")
        assert isinstance(result, SimulationResult)
        assert result.horizon == spec.horizon

    def test_identical_worlds_for_identical_specs(self):
        spec = random_scenario(9)
        a = spec.run("lsa")
        b = spec.run("lsa")
        assert a.missed_count == b.missed_count
        assert a.drawn_energy == b.drawn_energy
        assert a.final_stored == b.final_stored


class TestDerivedScenarios:
    def test_with_infinite_storage(self):
        spec = random_scenario(11)
        derived = spec.with_infinite_storage()
        assert math.isinf(derived.capacity)
        assert not derived.faults.storage_spikes
        assert derived.tasks == spec.tasks

    def test_without_faults(self):
        spec = random_scenario(26)  # known to carry a fault plan
        assert not spec.without_faults().faults.any_active

    def test_describe_mentions_faults(self):
        spec = ScenarioSpec(
            seed=0,
            tasks=(TaskParams(10.0, 1.0),),
            faults=FaultPlan(source_fault="blackout", overrun=True),
        )
        text = spec.describe()
        assert "blackout" in text and "overrun" in text
        assert "seed=0" in text
