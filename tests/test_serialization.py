"""Tests for result/trace persistence."""

import json
import math

import pytest

from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import OraclePredictor
from repro.energy.source import SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.serialization import (
    atomic_write_text,
    canonical_json,
    canonical_value,
    jobs_to_csv,
    load_trace_csv,
    result_to_dict,
    save_result_json,
    trace_to_csv,
)
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.sim.tracing import Trace, TraceKind
from repro.tasks.task import PeriodicTask, TaskSet


@pytest.fixture
def result():
    source = SolarStochasticSource(seed=2)
    sim = HarvestingRtSimulator(
        taskset=TaskSet([PeriodicTask(period=10.0, wcet=3.0, name="t")]),
        source=source,
        storage=IdealStorage(capacity=30.0),
        scheduler=GreedyEdfScheduler(xscale_pxa()),
        predictor=OraclePredictor(source),
        config=SimulationConfig(
            horizon=300.0,
            trace_kinds=(TraceKind.JOB_COMPLETE, TraceKind.STALL,
                         TraceKind.ENERGY),
            energy_sample_interval=50.0,
        ),
    )
    return sim.run()


class TestResultJson:
    def test_dict_fields(self, result):
        payload = result_to_dict(result)
        assert payload["scheduler"] == "edf"
        assert payload["metrics"]["released"] == 30
        assert payload["metrics"]["miss_rate"] == pytest.approx(
            result.miss_rate
        )
        assert len(payload["jobs"]) == 30
        assert payload["per_task"]["t"]["released"] == 30

    def test_round_trips_through_json(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result_json(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["completed"] == result.completed_count
        assert loaded["busy_time_profile"]["1"] > 0

    def test_infinite_capacity_serializes(self):
        source = SolarStochasticSource(seed=2)
        sim = HarvestingRtSimulator(
            taskset=TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")]),
            source=source,
            storage=IdealStorage(capacity=math.inf, initial=math.inf),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            config=SimulationConfig(horizon=50.0),
        )
        payload = result_to_dict(sim.run())
        assert payload["metrics"]["storage_capacity"] == "inf"
        json.dumps(payload)  # must not raise


class TestTraceCsv:
    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "trace.csv"
        written = trace_to_csv(result.trace, path)
        assert written == len(result.trace)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(result.trace)
        for original, restored in zip(result.trace, loaded):
            assert restored.time == original.time
            assert restored.kind == original.kind

    def test_field_values_preserved(self, tmp_path):
        trace = Trace()
        trace.record(1.5, "energy", stored=12.25, label="x")
        path = tmp_path / "t.csv"
        trace_to_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded[0]["stored"] == 12.25
        assert loaded[0]["label"] == "x"

    def test_exact_float_round_trip(self, tmp_path):
        trace = Trace()
        value = 0.1 + 0.2  # classic non-representable sum
        trace.record(value, "energy", stored=value)
        path = tmp_path / "t.csv"
        trace_to_csv(trace, path)
        assert load_trace_csv(path)[0].time == value

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="not a trace CSV"):
            load_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,kind,fields\n1.0,energy\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace_csv(path)


class TestJobsCsv:
    def test_writes_all_jobs(self, result, tmp_path):
        path = tmp_path / "jobs.csv"
        assert jobs_to_csv(result, path) == 30
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 31  # header + jobs
        assert lines[0].startswith("name,task,release")
        assert "t#0" in lines[1]


class TestAtomicWrite:
    def test_writes_and_cleans_temporary(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_interrupted_commit_leaves_original_intact(
        self, tmp_path, monkeypatch
    ):
        """A crash at the rename must expose old-or-new, never a tear."""
        target = tmp_path / "out.txt"
        target.write_text("old content")

        def crash(src, dst):
            raise OSError("simulated crash during commit")

        monkeypatch.setattr("repro.serialization.os.replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "new content")
        assert target.read_text() == "old content"
        assert list(tmp_path.iterdir()) == [target]

    def test_interrupted_fsync_cleans_temporary(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"

        def crash(fd):
            raise OSError("simulated fsync failure")

        monkeypatch.setattr("repro.serialization.os.fsync", crash)
        with pytest.raises(OSError, match="fsync"):
            atomic_write_text(target, "payload")
        assert list(tmp_path.iterdir()) == []

    def test_interrupted_trace_export_leaves_no_partial_file(
        self, tmp_path, monkeypatch
    ):
        trace = Trace()
        trace.record(1.0, "energy", stored=1.0)
        path = tmp_path / "trace.csv"

        def crash(src, dst):
            raise OSError("simulated crash during commit")

        monkeypatch.setattr("repro.serialization.os.replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            trace_to_csv(trace, path)
        assert list(tmp_path.iterdir()) == []

    def test_csv_newline_semantics_preserved(self, tmp_path):
        """The atomic path must keep the CRLF endings :mod:`csv` emits."""
        trace = Trace()
        trace.record(1.0, "energy", stored=1.0)
        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        data = path.read_bytes()
        assert data.count(b"\r\n") == 2  # header + one record
        assert b"\n\n" not in data  # no doubled translation

    def test_newline_parameter_forwarded(self, tmp_path):
        path = tmp_path / "raw.txt"
        atomic_write_text(path, "a\r\nb\r\n", newline="")
        assert path.read_bytes() == b"a\r\nb\r\n"


class TestCanonicalJson:
    def test_sorted_keys_and_newline(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("\n")

    def test_float_normalization(self):
        assert canonical_value(0.1 + 0.2) == canonical_value(0.3)
        assert canonical_value(-0.0) == 0.0
        assert math.copysign(1.0, canonical_value(-0.0)) == 1.0

    def test_non_finite_floats(self):
        assert canonical_value(math.inf) == "inf"
        assert canonical_value(-math.inf) == "-inf"
        assert canonical_value(math.nan) is None

    def test_numpy_values_unwrapped(self):
        import numpy as np

        payload = {"scalar": np.float64(1.5), "array": np.array([1.0, 2.0])}
        assert canonical_value(payload) == {"scalar": 1.5, "array": [1.0, 2.0]}

    def test_tuples_become_lists(self):
        assert canonical_value((1, 2.0, "x")) == [1, 2.0, "x"]

    def test_bool_survives(self):
        assert canonical_value(True) is True

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            canonical_value(object())

    def test_byte_stability_across_calls(self):
        payload = {"x": [1 / 3, 2 / 7], "y": {"nested": 1e-12}}
        assert canonical_json(payload) == canonical_json(payload)

    def test_result_payload_is_canonicalizable(self, result):
        text = canonical_json(result_to_dict(result))
        assert json.loads(text)["scheduler"] == result.scheduler_name
