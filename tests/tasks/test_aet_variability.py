"""Tests for actual-execution-time (AET < WCET) variability."""

import numpy as np
import pytest

from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.tasks.job import Job
from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet


class TestJobActualWork:
    @pytest.fixture
    def task(self):
        return AperiodicTask(arrival=0.0, relative_deadline=20.0, wcet=4.0,
                             name="t")

    def test_defaults_to_wcet(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0)
        assert job.actual_work == 4.0
        assert job.remaining_actual_work == 4.0

    def test_actual_below_wcet(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                  actual_work=2.5)
        assert job.actual_work == 2.5
        assert job.remaining_work == 4.0  # planning view is still WCET

    def test_actual_above_wcet_rejected(self, task):
        with pytest.raises(ValueError, match="actual work"):
            Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                actual_work=5.0)

    def test_zero_actual_rejected(self, task):
        with pytest.raises(ValueError):
            Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                actual_work=0.0)

    def test_completion_at_actual_not_wcet(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                  actual_work=2.0)
        job.mark_released()
        job.execute(speed=1.0, duration=2.0, power=3.2)
        assert job.remaining_actual_work == pytest.approx(0.0)
        assert job.remaining_work == pytest.approx(2.0)  # WCET bound left
        job.mark_completed(2.0)
        assert job.completion_time == 2.0

    def test_time_to_finish_uses_actual(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                  actual_work=2.0)
        assert job.time_to_finish(0.5) == pytest.approx(4.0)

    def test_progress_tracks_actual(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=20.0, wcet=4.0,
                  actual_work=2.0)
        job.mark_released()
        job.execute(1.0, 1.0, 3.2)
        assert job.progress == pytest.approx(0.5)


class TestTaskBcetRatio:
    def test_default_no_variability(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t")
        jobs = list(task.jobs(30.0, rng=np.random.default_rng(0)))
        assert all(j.actual_work == 2.0 for j in jobs)

    def test_sampling_within_bounds(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t", bcet_ratio=0.5)
        rng = np.random.default_rng(1)
        jobs = list(task.jobs(500.0, rng=rng))
        actuals = [j.actual_work for j in jobs]
        assert all(1.0 - 1e-9 <= a <= 2.0 + 1e-9 for a in actuals)
        assert len(set(actuals)) > 10  # actually random

    def test_no_rng_means_wcet(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t", bcet_ratio=0.5)
        jobs = list(task.jobs(30.0))
        assert all(j.actual_work == 2.0 for j in jobs)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError, match="bcet_ratio"):
            PeriodicTask(period=10.0, wcet=2.0, bcet_ratio=0.0)
        with pytest.raises(ValueError):
            PeriodicTask(period=10.0, wcet=2.0, bcet_ratio=1.5)

    def test_with_wcet_preserves_ratio(self):
        task = PeriodicTask(period=10.0, wcet=2.0, name="t", bcet_ratio=0.7)
        assert task.with_wcet(1.0).bcet_ratio == 0.7

    def test_aperiodic_supports_ratio(self):
        task = AperiodicTask(arrival=0.0, relative_deadline=10.0, wcet=2.0,
                             bcet_ratio=0.5)
        (job,) = task.jobs(20.0, rng=np.random.default_rng(3))
        assert 1.0 <= job.actual_work <= 2.0


class TestSimulatorWithAet:
    def _run(self, bcet_ratio, aet_seed):
        taskset = TaskSet(
            [PeriodicTask(period=10.0, wcet=4.0, name="t",
                          bcet_ratio=bcet_ratio)]
        )
        source = ConstantSource(0.0)
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=IdealStorage(capacity=1e6),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            predictor=OraclePredictor(source),
            config=SimulationConfig(horizon=100.0, aet_seed=aet_seed),
        )
        return sim.run()

    def test_early_completions_consume_less(self):
        full = self._run(bcet_ratio=1.0, aet_seed=0)
        short = self._run(bcet_ratio=0.5, aet_seed=0)
        assert short.drawn_energy < full.drawn_energy
        assert short.completed_count == full.completed_count == 10

    def test_deterministic_given_aet_seed(self):
        a = self._run(bcet_ratio=0.5, aet_seed=7)
        b = self._run(bcet_ratio=0.5, aet_seed=7)
        assert a.drawn_energy == b.drawn_energy

    def test_different_aet_seeds_differ(self):
        a = self._run(bcet_ratio=0.5, aet_seed=7)
        b = self._run(bcet_ratio=0.5, aet_seed=8)
        assert a.drawn_energy != b.drawn_energy

    def test_no_seed_runs_wcet(self):
        full = self._run(bcet_ratio=0.5, aet_seed=None)
        reference = self._run(bcet_ratio=1.0, aet_seed=None)
        assert full.drawn_energy == pytest.approx(reference.drawn_energy)
