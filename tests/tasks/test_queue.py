"""Unit and property tests for the EDF ready queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import AperiodicTask


def make_job(release: float, deadline: float, name: str) -> Job:
    task = AperiodicTask(
        arrival=release, relative_deadline=deadline - release, wcet=0.1, name=name
    )
    return Job(task=task, release=release, absolute_deadline=deadline, wcet=0.1)


class TestOrdering:
    def test_earliest_deadline_first(self):
        q = EdfReadyQueue()
        q.push(make_job(0.0, 30.0, "late"))
        q.push(make_job(0.0, 10.0, "early"))
        q.push(make_job(0.0, 20.0, "mid"))
        assert q.pop().task.name == "early"
        assert q.pop().task.name == "mid"
        assert q.pop().task.name == "late"

    def test_release_breaks_deadline_ties(self):
        q = EdfReadyQueue()
        q.push(make_job(5.0, 20.0, "second"))
        q.push(make_job(1.0, 20.0, "first"))
        assert q.pop().task.name == "first"

    def test_insertion_order_breaks_full_ties(self):
        q = EdfReadyQueue()
        a = make_job(0.0, 20.0, "a")
        b = make_job(0.0, 20.0, "b")
        q.push(a)
        q.push(b)
        assert q.pop() is a

    def test_peek_does_not_remove(self):
        q = EdfReadyQueue()
        job = make_job(0.0, 10.0, "x")
        q.push(job)
        assert q.peek() is job
        assert len(q) == 1

    def test_empty_peek_is_none(self):
        assert EdfReadyQueue().peek() is None

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EdfReadyQueue().pop()


class TestMembership:
    def test_contains(self):
        q = EdfReadyQueue()
        job = make_job(0.0, 10.0, "x")
        assert job not in q
        q.push(job)
        assert job in q

    def test_double_push_rejected(self):
        q = EdfReadyQueue()
        job = make_job(0.0, 10.0, "x")
        q.push(job)
        with pytest.raises(ValueError, match="already"):
            q.push(job)

    def test_remove_arbitrary(self):
        q = EdfReadyQueue()
        a = make_job(0.0, 10.0, "a")
        b = make_job(0.0, 20.0, "b")
        q.push(a)
        q.push(b)
        q.remove(a)
        assert len(q) == 1
        assert q.pop() is b

    def test_remove_is_idempotent(self):
        q = EdfReadyQueue()
        job = make_job(0.0, 10.0, "x")
        q.push(job)
        q.remove(job)
        q.remove(job)
        assert len(q) == 0

    def test_reinsert_after_remove(self):
        q = EdfReadyQueue()
        job = make_job(0.0, 10.0, "x")
        q.push(job)
        q.remove(job)
        q.push(job)
        assert q.pop() is job

    def test_clear(self):
        q = EdfReadyQueue()
        q.push(make_job(0.0, 10.0, "x"))
        q.clear()
        assert len(q) == 0
        assert q.peek() is None


class TestSnapshots:
    def test_jobs_in_deadline_order(self):
        q = EdfReadyQueue()
        for i, deadline in enumerate([30.0, 10.0, 20.0]):
            q.push(make_job(0.0, deadline, f"t{i}"))
        deadlines = [j.absolute_deadline for j in q.jobs()]
        assert deadlines == [10.0, 20.0, 30.0]

    def test_snapshot_is_nondestructive(self):
        q = EdfReadyQueue()
        q.push(make_job(0.0, 10.0, "x"))
        list(q)
        assert len(q) == 1

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pop_sequence_matches_sorted_reference(self, spec):
        """Popping everything yields jobs sorted by (deadline, release)."""
        q = EdfReadyQueue()
        jobs = []
        for i, (release, rel_deadline) in enumerate(spec):
            job = make_job(release, release + rel_deadline, f"j{i}")
            jobs.append(job)
            q.push(job)
        popped = [q.pop() for _ in range(len(jobs))]
        keys = [(j.absolute_deadline, j.release) for j in popped]
        assert keys == sorted(keys)
        assert len(q) == 0
