"""Unit tests for tasks and task sets."""

import pytest

from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet


class TestPeriodicTask:
    def test_deadline_defaults_to_period(self):
        task = PeriodicTask(period=10.0, wcet=2.0)
        assert task.relative_deadline == 10.0

    def test_utilization(self):
        task = PeriodicTask(period=10.0, wcet=2.5)
        assert task.utilization == pytest.approx(0.25)

    def test_release_times(self):
        task = PeriodicTask(period=10.0, wcet=1.0)
        assert list(task.release_times(35.0)) == [0.0, 10.0, 20.0, 30.0]

    def test_release_excludes_horizon(self):
        task = PeriodicTask(period=10.0, wcet=1.0)
        assert list(task.release_times(30.0)) == [0.0, 10.0, 20.0]

    def test_phase_offsets_releases(self):
        task = PeriodicTask(period=10.0, wcet=1.0, first_release=3.0)
        assert list(task.release_times(25.0)) == [3.0, 13.0, 23.0]

    def test_jobs_carry_parameters(self):
        task = PeriodicTask(period=10.0, wcet=2.0, relative_deadline=8.0)
        jobs = list(task.jobs(20.0))
        assert len(jobs) == 2
        assert jobs[1].release == 10.0
        assert jobs[1].absolute_deadline == 18.0
        assert jobs[1].wcet == 2.0
        assert jobs[1].index == 1

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ValueError, match="cannot meet its deadline"):
            PeriodicTask(period=10.0, wcet=11.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTask(period=0.0, wcet=1.0)

    def test_with_wcet_preserves_everything_else(self):
        task = PeriodicTask(period=10.0, wcet=2.0, relative_deadline=9.0,
                            first_release=1.0, name="t")
        copy = task.with_wcet(3.0)
        assert copy.wcet == 3.0
        assert copy.period == 10.0
        assert copy.relative_deadline == 9.0
        assert copy.first_release == 1.0
        assert copy.name == "t"

    def test_auto_names_unique(self):
        a = PeriodicTask(period=10.0, wcet=1.0)
        b = PeriodicTask(period=10.0, wcet=1.0)
        assert a.name != b.name


class TestAperiodicTask:
    def test_single_release(self):
        task = AperiodicTask(arrival=5.0, relative_deadline=16.0, wcet=1.5)
        assert list(task.release_times(100.0)) == [5.0]

    def test_no_release_beyond_horizon(self):
        task = AperiodicTask(arrival=50.0, relative_deadline=10.0, wcet=1.0)
        assert list(task.release_times(20.0)) == []

    def test_zero_longrun_utilization(self):
        task = AperiodicTask(arrival=0.0, relative_deadline=10.0, wcet=5.0)
        assert task.utilization == 0.0

    def test_job_deadline_absolute(self):
        task = AperiodicTask(arrival=5.0, relative_deadline=16.0, wcet=1.5)
        (job,) = task.jobs(100.0)
        assert job.absolute_deadline == 21.0


class TestTaskSet:
    def test_total_utilization(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, name="a"),
                PeriodicTask(period=20.0, wcet=4.0, name="b"),
            ]
        )
        assert ts.utilization == pytest.approx(0.4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet(
                [
                    PeriodicTask(period=10.0, wcet=1.0, name="x"),
                    PeriodicTask(period=20.0, wcet=1.0, name="x"),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([])

    def test_jobs_sorted_by_release(self):
        ts = TaskSet(
            [
                PeriodicTask(period=7.0, wcet=1.0, name="a"),
                PeriodicTask(period=5.0, wcet=1.0, name="b"),
            ]
        )
        jobs = ts.jobs(20.0)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)
        assert len(jobs) == 3 + 4

    def test_hyperperiod(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=1.0, name="a"),
                PeriodicTask(period=15.0, wcet=1.0, name="b"),
            ]
        )
        assert ts.hyperperiod() == 30.0

    def test_hyperperiod_rejects_aperiodic(self):
        ts = TaskSet([AperiodicTask(arrival=0.0, relative_deadline=5.0, wcet=1.0)])
        with pytest.raises(ValueError, match="all-periodic"):
            ts.hyperperiod()

    def test_hyperperiod_rejects_non_integer_periods(self):
        ts = TaskSet([PeriodicTask(period=2.5, wcet=1.0)])
        with pytest.raises(ValueError, match="integer periods"):
            ts.hyperperiod()

    def test_scaled_to(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, name="a"),
                PeriodicTask(period=20.0, wcet=4.0, name="b"),
            ]
        )
        scaled = ts.scaled_to(0.8)
        assert scaled.utilization == pytest.approx(0.8)
        # proportions preserved
        assert scaled[0].wcet / scaled[1].wcet == pytest.approx(0.5)

    def test_indexing_and_iteration(self):
        tasks = [PeriodicTask(period=10.0, wcet=1.0, name=f"t{i}") for i in range(3)]
        ts = TaskSet(tasks)
        assert len(ts) == 3
        assert ts[0] is tasks[0]
        assert list(ts) == tasks
