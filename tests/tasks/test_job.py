"""Unit tests for job lifecycle and progress accounting."""

import pytest

from repro.tasks.job import Job, JobState
from repro.tasks.task import AperiodicTask


@pytest.fixture
def task():
    return AperiodicTask(arrival=0.0, relative_deadline=16.0, wcet=4.0, name="tau1")


@pytest.fixture
def job(task):
    return Job(task=task, release=0.0, absolute_deadline=16.0, wcet=4.0)


class TestLifecycle:
    def test_initial_state(self, job):
        assert job.state is JobState.PENDING
        assert job.remaining_work == 4.0
        assert not job.is_finished

    def test_release_transition(self, job):
        job.mark_released()
        assert job.state is JobState.READY

    def test_double_release_rejected(self, job):
        job.mark_released()
        with pytest.raises(RuntimeError):
            job.mark_released()

    def test_execute_requires_ready(self, job):
        with pytest.raises(RuntimeError):
            job.execute(1.0, 1.0, 8.0)

    def test_completion(self, job):
        job.mark_released()
        job.execute(speed=1.0, duration=4.0, power=8.0)
        job.mark_completed(4.0)
        assert job.state is JobState.COMPLETED
        assert job.completion_time == 4.0
        assert job.is_finished

    def test_completion_with_remaining_work_rejected(self, job):
        job.mark_released()
        job.execute(1.0, 2.0, 8.0)
        with pytest.raises(RuntimeError, match="work left"):
            job.mark_completed(2.0)

    def test_miss(self, job):
        job.mark_released()
        job.mark_missed()
        assert job.state is JobState.MISSED
        assert job.is_finished

    def test_miss_after_finish_rejected(self, job):
        job.mark_released()
        job.execute(1.0, 4.0, 8.0)
        job.mark_completed(4.0)
        with pytest.raises(RuntimeError):
            job.mark_missed()


class TestProgress:
    def test_speed_scales_work(self, job):
        """Section 3.3: w/S_n execution time at level S_n."""
        job.mark_released()
        job.execute(speed=0.5, duration=4.0, power=8.0 / 3.0)
        assert job.remaining_work == pytest.approx(2.0)
        assert job.progress == pytest.approx(0.5)

    def test_time_to_finish(self, job):
        job.mark_released()
        assert job.time_to_finish(0.5) == pytest.approx(8.0)
        job.execute(0.5, 4.0, 1.0)
        assert job.time_to_finish(1.0) == pytest.approx(2.0)

    def test_zero_speed_accrues_energy_only(self, job):
        """Dead time (switch overhead) burns power without progress."""
        job.mark_released()
        job.execute(speed=0.0, duration=1.0, power=8.0)
        assert job.remaining_work == 4.0
        assert job.energy_consumed == pytest.approx(8.0)

    def test_overrun_rejected(self, job):
        job.mark_released()
        with pytest.raises(RuntimeError, match="only"):
            job.execute(speed=1.0, duration=5.0, power=8.0)

    def test_energy_accumulates(self, job):
        job.mark_released()
        job.execute(1.0, 1.0, 8.0)
        job.execute(0.5, 2.0, 2.0)
        assert job.energy_consumed == pytest.approx(12.0)

    def test_negative_speed_rejected(self, job):
        job.mark_released()
        with pytest.raises(ValueError):
            job.execute(-0.1, 1.0, 1.0)

    def test_zero_speed_time_to_finish_rejected(self, job):
        with pytest.raises(ValueError):
            job.time_to_finish(0.0)


class TestDerivedMetrics:
    def test_response_time_and_lateness(self, task):
        job = Job(task=task, release=2.0, absolute_deadline=18.0, wcet=4.0)
        job.mark_released()
        job.execute(1.0, 4.0, 8.0)
        job.mark_completed(10.0)
        assert job.response_time == pytest.approx(8.0)
        assert job.lateness == pytest.approx(-8.0)

    def test_unfinished_has_no_response_time(self, job):
        assert job.response_time is None
        assert job.lateness is None

    def test_first_start_recorded_once(self, job):
        job.mark_released()
        job.note_started(3.0)
        job.note_started(7.0)
        assert job.first_start_time == 3.0

    def test_name_combines_task_and_index(self, task):
        job = Job(task=task, release=0.0, absolute_deadline=16.0, wcet=4.0, index=3)
        assert job.name == "tau1#3"

    def test_relative_deadline(self, task):
        job = Job(task=task, release=5.0, absolute_deadline=21.0, wcet=1.5)
        assert job.relative_deadline == pytest.approx(16.0)


class TestValidation:
    def test_deadline_before_release_rejected(self, task):
        with pytest.raises(ValueError):
            Job(task=task, release=10.0, absolute_deadline=10.0, wcet=1.0)

    def test_nonpositive_wcet_rejected(self, task):
        with pytest.raises(ValueError):
            Job(task=task, release=0.0, absolute_deadline=10.0, wcet=0.0)

    def test_negative_release_rejected(self, task):
        with pytest.raises(ValueError):
            Job(task=task, release=-1.0, absolute_deadline=10.0, wcet=1.0)
