"""Unit tests for the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.tasks.task import PeriodicTask, TaskSet
from repro.verify.strategies import seeds, task_counts, utilizations
from repro.tasks.workload import (
    PAPER_PERIOD_CHOICES,
    generate_paper_taskset,
    generate_uunifast_taskset,
    scale_to_utilization,
)


class TestScaleToUtilization:
    def test_hits_target_exactly(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=1.0, name="a"),
                PeriodicTask(period=20.0, wcet=1.0, name="b"),
            ]
        )
        scaled = scale_to_utilization(ts, 0.6)
        assert scaled.utilization == pytest.approx(0.6)

    def test_preserves_relative_wcets(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=1.0, name="a"),
                PeriodicTask(period=10.0, wcet=3.0, name="b"),
            ]
        )
        scaled = scale_to_utilization(ts, 0.2)
        assert scaled[1].wcet / scaled[0].wcet == pytest.approx(3.0)

    def test_over_deadline_scaling_rejected(self):
        # With deadline == period the per-task bound w <= d always holds
        # after scaling to U <= 1, but a constrained deadline (d < p) can
        # be overrun: w = 4 scaled by 2.5 -> 10 > d = 5.
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0,
                                   relative_deadline=5.0, name="a")])
        with pytest.raises(ValueError, match="past its deadline"):
            scale_to_utilization(ts, 1.0)

    def test_invalid_target_rejected(self):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=1.0)])
        with pytest.raises(ValueError):
            scale_to_utilization(ts, 0.0)
        with pytest.raises(ValueError):
            scale_to_utilization(ts, 1.5)


class TestPaperGenerator:
    def test_deterministic_given_seed(self):
        kwargs = dict(
            n_tasks=5, utilization=0.4, mean_harvest_power=4.0, max_power=3.2
        )
        a = generate_paper_taskset(seed=1, **kwargs)
        b = generate_paper_taskset(seed=1, **kwargs)
        assert [(t.period, t.wcet) for t in a] == [(t.period, t.wcet) for t in b]

    def test_different_seeds_differ(self):
        kwargs = dict(
            n_tasks=5, utilization=0.4, mean_harvest_power=4.0, max_power=3.2
        )
        a = generate_paper_taskset(seed=1, **kwargs)
        b = generate_paper_taskset(seed=2, **kwargs)
        assert [(t.period, t.wcet) for t in a] != [(t.period, t.wcet) for t in b]

    def test_utilization_exact(self):
        ts = generate_paper_taskset(
            n_tasks=5, utilization=0.37, mean_harvest_power=4.0,
            max_power=3.2, seed=3,
        )
        assert ts.utilization == pytest.approx(0.37)

    def test_periods_from_paper_set(self):
        """Section 5.1: periods drawn from {10, 20, ..., 100}."""
        ts = generate_paper_taskset(
            n_tasks=50, utilization=0.5, mean_harvest_power=4.0,
            max_power=3.2, seed=4,
        )
        assert all(t.period in PAPER_PERIOD_CHOICES for t in ts)

    def test_deadline_equals_period(self):
        ts = generate_paper_taskset(
            n_tasks=5, utilization=0.4, mean_harvest_power=4.0,
            max_power=3.2, seed=5,
        )
        assert all(t.relative_deadline == t.period for t in ts)

    def test_every_task_individually_feasible(self):
        ts = generate_paper_taskset(
            n_tasks=5, utilization=1.0, mean_harvest_power=4.0,
            max_power=3.2, seed=6,
        )
        assert all(t.wcet <= t.period for t in ts)

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            generate_paper_taskset(
                n_tasks=2, utilization=0.4, mean_harvest_power=4.0,
                max_power=3.2, seed=1, rng=np.random.default_rng(0),
            )

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            generate_paper_taskset(
                n_tasks=0, utilization=0.4, mean_harvest_power=4.0, max_power=3.2
            )
        with pytest.raises(ValueError):
            generate_paper_taskset(
                n_tasks=2, utilization=0.4, mean_harvest_power=0.0, max_power=3.2
            )
        with pytest.raises(ValueError):
            generate_paper_taskset(
                n_tasks=2, utilization=0.4, mean_harvest_power=4.0, max_power=3.2,
                period_choices=(),
            )

    @given(
        n_tasks=task_counts(max_tasks=12),
        utilization=utilizations(),
        seed=seeds(max_seed=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_generated_sets_always_valid(self, n_tasks, utilization, seed):
        ts = generate_paper_taskset(
            n_tasks=n_tasks, utilization=utilization,
            mean_harvest_power=3.99, max_power=3.2, seed=seed,
        )
        assert len(ts) == n_tasks
        assert ts.utilization == pytest.approx(utilization)
        assert all(0 < t.wcet <= t.period for t in ts)


class TestUUniFast:
    def test_utilization_exact(self):
        ts = generate_uunifast_taskset(n_tasks=6, utilization=0.73, seed=1)
        assert ts.utilization == pytest.approx(0.73)

    def test_deterministic_given_seed(self):
        a = generate_uunifast_taskset(n_tasks=4, utilization=0.5, seed=9)
        b = generate_uunifast_taskset(n_tasks=4, utilization=0.5, seed=9)
        assert [(t.period, t.wcet) for t in a] == [(t.period, t.wcet) for t in b]

    def test_single_task(self):
        ts = generate_uunifast_taskset(n_tasks=1, utilization=0.6, seed=2)
        assert len(ts) == 1
        assert ts.utilization == pytest.approx(0.6)

    @given(
        n_tasks=task_counts(max_tasks=10),
        utilization=utilizations(),
        seed=seeds(max_seed=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_feasible(self, n_tasks, utilization, seed):
        ts = generate_uunifast_taskset(
            n_tasks=n_tasks, utilization=utilization, seed=seed
        )
        assert ts.utilization == pytest.approx(utilization)
        assert all(0 < t.wcet <= t.period + 1e-9 for t in ts)
