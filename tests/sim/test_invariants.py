"""Property-based fuzzing of whole-simulation invariants.

Random workloads, sources, storages and schedulers are thrown at the
simulator; every run must uphold the physical and accounting invariants
of the model regardless of the scenario:

* energy conservation: initial + harvested = drawn + overflow + leaked
  + final stored (ideal storage; lossy adds conversion losses, so only
  an inequality holds there);
* job accounting: released = completed + missed + in-flight;
* causality on every job: release <= start <= completion <= horizon;
* the processor cannot be busy longer than the horizon, and busy plus
  idle time must sum to it.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import (
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.source import (
    ConstantSource,
    DayNightSource,
    SolarStochasticSource,
)
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler, StretchEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.sim.simulator import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
)
from repro.tasks.task import PeriodicTask, TaskSet

SCHEDULERS = (
    GreedyEdfScheduler,
    LazyScheduler,
    EaDvfsScheduler,
    StretchEdfScheduler,
)


@st.composite
def scenarios(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    total_u = 0.0
    for i in range(n_tasks):
        period = float(draw(st.sampled_from([10, 20, 30, 50, 80])))
        u = draw(st.floats(min_value=0.02, max_value=0.35))
        if total_u + u > 1.0:
            u = max(0.01, 1.0 - total_u)
        total_u += u
        bcet = draw(st.sampled_from([1.0, 1.0, 0.6]))
        tasks.append(
            PeriodicTask(period=period, wcet=u * period, name=f"t{i}",
                         bcet_ratio=bcet)
        )
    source_kind = draw(st.sampled_from(["constant", "solar", "daynight"]))
    source_seed = draw(st.integers(min_value=0, max_value=100))
    capacity = draw(st.floats(min_value=5.0, max_value=500.0))
    scheduler_cls = draw(st.sampled_from(SCHEDULERS))
    predictor_kind = draw(st.sampled_from(["oracle", "profile", "mean"]))
    miss_policy = draw(st.sampled_from(list(DeadlineMissPolicy)))
    horizon = float(draw(st.sampled_from([200, 500, 800])))
    return {
        "tasks": tasks,
        "source_kind": source_kind,
        "source_seed": source_seed,
        "capacity": capacity,
        "scheduler_cls": scheduler_cls,
        "predictor_kind": predictor_kind,
        "miss_policy": miss_policy,
        "horizon": horizon,
    }


def build_and_run(spec):
    if spec["source_kind"] == "constant":
        source = ConstantSource(1.0 + (spec["source_seed"] % 7) * 0.5)
    elif spec["source_kind"] == "solar":
        source = SolarStochasticSource(seed=spec["source_seed"])
    else:
        source = DayNightSource(day_power=4.0, night_power=0.2,
                                day_length=60.0, night_length=40.0)
    if spec["predictor_kind"] == "oracle":
        predictor = OraclePredictor(source)
    elif spec["predictor_kind"] == "profile":
        predictor = ProfilePredictor(period=100.0, n_bins=16)
    else:
        predictor = MeanPowerPredictor()
    scale = xscale_pxa()
    simulator = HarvestingRtSimulator(
        taskset=TaskSet(spec["tasks"]),
        source=source,
        storage=IdealStorage(capacity=spec["capacity"]),
        scheduler=spec["scheduler_cls"](scale),
        predictor=predictor,
        config=SimulationConfig(
            horizon=spec["horizon"],
            miss_policy=spec["miss_policy"],
            aet_seed=spec["source_seed"],
        ),
    )
    return spec, simulator.run()


class TestSimulationInvariants:
    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation(self, spec):
        spec, result = build_and_run(spec)
        balance = (
            spec["capacity"]  # storage starts full
            + result.harvested_energy
            - result.drawn_energy
            - result.overflow_energy
            - result.leaked_energy
            - result.final_stored
        )
        tolerance = 1e-6 * max(1.0, result.harvested_energy)
        assert abs(balance) < tolerance

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_job_accounting(self, spec):
        spec, result = build_and_run(spec)
        finished = result.completed_count + sum(
            1 for j in result.jobs
            if j.completion_time is None and j.is_finished
        )
        assert finished <= result.released_count
        assert 0.0 <= result.miss_rate <= 1.0
        assert result.judged_count <= result.released_count
        if spec["miss_policy"] is DeadlineMissPolicy.DROP:
            # Every job is completed, dropped-missed, or still in flight.
            in_flight = sum(1 for j in result.jobs if not j.is_finished)
            assert (
                result.completed_count
                + sum(1 for j in result.jobs if j.is_finished
                      and j.completion_time is None)
                + in_flight
                == result.released_count
            )

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_job_causality(self, spec):
        spec, result = build_and_run(spec)
        for job in result.jobs:
            if job.first_start_time is not None:
                assert job.first_start_time >= job.release - 1e-9
            if job.completion_time is not None:
                assert job.first_start_time is not None
                assert job.completion_time >= job.first_start_time - 1e-9
                assert job.completion_time <= spec["horizon"] + 1e-9
                if spec["miss_policy"] is DeadlineMissPolicy.DROP:
                    # Dropped-at-deadline jobs never complete late.
                    assert (
                        job.completion_time
                        <= job.absolute_deadline + 1e-6
                    )

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_time_accounting(self, spec):
        spec, result = build_and_run(spec)
        busy = result.total_busy_time
        assert busy >= -1e-9
        assert busy <= spec["horizon"] + 1e-6
        assert busy + result.idle_time == pytest.approx(
            spec["horizon"], abs=1e-6
        )
        assert result.stall_time <= result.idle_time + 1e-6

    @given(scenarios())
    @settings(max_examples=25, deadline=None)
    def test_energy_aware_policies_never_run_negative_storage(self, spec):
        """Re-run with an energy trace and check the recorded levels."""
        spec = dict(spec)
        spec, result = build_and_run(spec)
        assert result.final_stored >= -1e-6
        assert result.final_stored <= spec["capacity"] + 1e-6


class TestEdfOptimalityCrossCheck:
    """With infinite energy, preemptive EDF is optimal (Liu & Layland):
    any task set that passes the offline schedulability test must run
    with zero misses — a whole-stack cross-check between the analytic
    module and the simulator."""

    # stretch-edf is deliberately excluded: greedy per-job stretching is
    # NOT optimal (the paper's Figure 3 counterexample), so it may miss
    # even on schedulable sets.  The three EDF-degenerate policies must
    # not.
    @given(
        n=st.integers(min_value=1, max_value=5),
        u=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
        scheduler_cls=st.sampled_from(
            (GreedyEdfScheduler, LazyScheduler, EaDvfsScheduler)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedulable_sets_never_miss_with_infinite_energy(
        self, n, u, seed, scheduler_cls
    ):
        from repro.analysis.schedulability import edf_schedulable
        from repro.tasks.workload import generate_uunifast_taskset

        taskset = generate_uunifast_taskset(n_tasks=n, utilization=u,
                                            seed=seed)
        assert edf_schedulable(taskset)
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=ConstantSource(0.0),
            storage=IdealStorage(capacity=math.inf, initial=math.inf),
            scheduler=scheduler_cls(xscale_pxa()),
            config=SimulationConfig(horizon=400.0),
        )
        result = simulator.run()
        assert result.missed_count == 0

    def test_busy_time_matches_demand_over_hyperperiod(self):
        """With infinite energy and full-speed EDF, the processor's busy
        time over k hyperperiods equals the released work exactly."""
        taskset = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, name="a"),
                PeriodicTask(period=15.0, wcet=3.0, name="b"),
            ]
        )
        horizon = 4 * taskset.hyperperiod()  # 120
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=ConstantSource(0.0),
            storage=IdealStorage(capacity=math.inf, initial=math.inf),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            config=SimulationConfig(horizon=horizon),
        )
        result = simulator.run()
        expected_work = 12 * 2.0 + 8 * 3.0  # 12 jobs of a, 8 of b
        assert result.total_busy_time == pytest.approx(expected_work)
        assert result.drawn_energy == pytest.approx(expected_work * 3.2)
