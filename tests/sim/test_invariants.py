"""Property-based fuzzing of whole-simulation invariants.

Random workloads, sources, storages and schedulers are thrown at the
simulator; every run must uphold the physical and accounting invariants
of the model regardless of the scenario:

* energy conservation: initial + harvested = drawn + overflow + leaked
  + final stored (ideal storage; lossy adds conversion losses, so only
  an inequality holds there);
* job accounting: released = completed + missed + in-flight;
* causality on every job: release <= start <= completion <= horizon;
* the processor cannot be busy longer than the horizon, and busy plus
  idle time must sum to it.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.presets import xscale_pxa
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.sim.simulator import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
)
from repro.tasks.task import PeriodicTask, TaskSet
from repro.verify.strategies import scenario_specs, scheduler_names


class TestSimulationInvariants:
    """Each property draws a fault-free world from the shared strategy
    library (``repro.verify.strategies``) plus a scheduler name, so the
    exact same scenario distribution feeds both these fuzz tests and the
    ``repro verify`` differential harness."""

    @given(spec=scenario_specs(allow_faults=False), name=scheduler_names())
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation(self, spec, name):
        result = spec.run(name)
        balance = (
            spec.capacity  # storage starts full
            + result.harvested_energy
            - result.drawn_energy
            - result.overflow_energy
            - result.leaked_energy
            - result.final_stored
        )
        tolerance = 1e-6 * max(1.0, result.harvested_energy)
        assert abs(balance) < tolerance

    @given(spec=scenario_specs(allow_faults=False), name=scheduler_names())
    @settings(max_examples=40, deadline=None)
    def test_job_accounting(self, spec, name):
        result = spec.run(name)
        finished = result.completed_count + sum(
            1 for j in result.jobs
            if j.completion_time is None and j.is_finished
        )
        assert finished <= result.released_count
        assert 0.0 <= result.miss_rate <= 1.0
        assert result.judged_count <= result.released_count
        if DeadlineMissPolicy(spec.miss_policy) is DeadlineMissPolicy.DROP:
            # Every job is completed, dropped-missed, or still in flight.
            in_flight = sum(1 for j in result.jobs if not j.is_finished)
            assert (
                result.completed_count
                + sum(1 for j in result.jobs if j.is_finished
                      and j.completion_time is None)
                + in_flight
                == result.released_count
            )

    @given(spec=scenario_specs(allow_faults=False), name=scheduler_names())
    @settings(max_examples=40, deadline=None)
    def test_job_causality(self, spec, name):
        result = spec.run(name)
        drop = DeadlineMissPolicy(spec.miss_policy) is DeadlineMissPolicy.DROP
        for job in result.jobs:
            if job.first_start_time is not None:
                assert job.first_start_time >= job.release - 1e-9
            if job.completion_time is not None:
                assert job.first_start_time is not None
                assert job.completion_time >= job.first_start_time - 1e-9
                assert job.completion_time <= spec.horizon + 1e-9
                if drop:
                    # Dropped-at-deadline jobs never complete late.
                    assert (
                        job.completion_time
                        <= job.absolute_deadline + 1e-6
                    )

    @given(spec=scenario_specs(allow_faults=False), name=scheduler_names())
    @settings(max_examples=40, deadline=None)
    def test_time_accounting(self, spec, name):
        result = spec.run(name)
        busy = result.total_busy_time
        assert busy >= -1e-9
        assert busy <= spec.horizon + 1e-6
        assert busy + result.idle_time == pytest.approx(
            spec.horizon, abs=1e-6
        )
        assert result.stall_time <= result.idle_time + 1e-6

    @given(spec=scenario_specs(allow_faults=False), name=scheduler_names())
    @settings(max_examples=25, deadline=None)
    def test_energy_aware_policies_never_run_negative_storage(self, spec, name):
        result = spec.run(name)
        assert result.final_stored >= -1e-6
        assert result.final_stored <= spec.capacity + 1e-6

    @given(spec=scenario_specs(), name=scheduler_names())
    @settings(max_examples=25, deadline=None)
    def test_faulted_worlds_stay_physical(self, spec, name):
        """With fault decorators active the strict ledger no longer
        applies, but the physical bounds must survive any fault mix."""
        result = spec.run(name)
        assert result.final_stored >= -1e-6
        assert result.harvested_energy >= -1e-9
        assert result.drawn_energy >= -1e-9
        assert result.total_busy_time <= spec.horizon + 1e-6


class TestEdfOptimalityCrossCheck:
    """With infinite energy, preemptive EDF is optimal (Liu & Layland):
    any task set that passes the offline schedulability test must run
    with zero misses — a whole-stack cross-check between the analytic
    module and the simulator."""

    # stretch-edf is deliberately excluded: greedy per-job stretching is
    # NOT optimal (the paper's Figure 3 counterexample), so it may miss
    # even on schedulable sets.  The three EDF-degenerate policies must
    # not.
    @given(
        n=st.integers(min_value=1, max_value=5),
        u=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
        scheduler_cls=st.sampled_from(
            (GreedyEdfScheduler, LazyScheduler, EaDvfsScheduler)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedulable_sets_never_miss_with_infinite_energy(
        self, n, u, seed, scheduler_cls
    ):
        from repro.analysis.schedulability import edf_schedulable
        from repro.tasks.workload import generate_uunifast_taskset

        taskset = generate_uunifast_taskset(n_tasks=n, utilization=u,
                                            seed=seed)
        assert edf_schedulable(taskset)
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=ConstantSource(0.0),
            storage=IdealStorage(capacity=math.inf, initial=math.inf),
            scheduler=scheduler_cls(xscale_pxa()),
            config=SimulationConfig(horizon=400.0),
        )
        result = simulator.run()
        assert result.missed_count == 0

    def test_busy_time_matches_demand_over_hyperperiod(self):
        """With infinite energy and full-speed EDF, the processor's busy
        time over k hyperperiods equals the released work exactly."""
        taskset = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, name="a"),
                PeriodicTask(period=15.0, wcet=3.0, name="b"),
            ]
        )
        horizon = 4 * taskset.hyperperiod()  # 120
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=ConstantSource(0.0),
            storage=IdealStorage(capacity=math.inf, initial=math.inf),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            config=SimulationConfig(horizon=horizon),
        )
        result = simulator.run()
        expected_work = 12 * 2.0 + 8 * 3.0  # 12 jobs of a, 8 of b
        assert result.total_busy_time == pytest.approx(expected_work)
        assert result.drawn_energy == pytest.approx(expected_work * 3.2)
