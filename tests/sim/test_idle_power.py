"""Tests for the non-zero idle-power ablation path.

The paper's model draws nothing while idle; the simulator supports a
static idle draw for platform-overhead studies, including the brown-out
rule when an empty storage cannot sustain it.
"""

import pytest

from repro.cpu.presets import xscale_pxa
from repro.cpu.processor import Processor
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource, TraceSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet


def run_idle(idle_power, source, capacity=100.0, initial=None, horizon=50.0,
             taskset=None):
    scale = xscale_pxa()
    sim = HarvestingRtSimulator(
        taskset=taskset or TaskSet(
            [AperiodicTask(0.0, 10.0, 1.0, name="t")]
        ),
        source=source,
        storage=IdealStorage(capacity=capacity, initial=initial),
        scheduler=GreedyEdfScheduler(scale),
        predictor=OraclePredictor(source),
        processor=Processor(scale, idle_power=idle_power),
        config=SimulationConfig(horizon=horizon),
    )
    return sim.run()


class TestIdlePower:
    def test_idle_draw_depletes_storage(self):
        """No harvest: idle power drains exactly idle * idle_time."""
        idle_power = 0.1
        result = run_idle(idle_power, ConstantSource(0.0), capacity=100.0)
        busy_energy = 1.0 * 3.2  # one 1-unit job at P_max
        idle_energy = idle_power * result.idle_time
        assert result.drawn_energy == pytest.approx(
            busy_energy + idle_energy
        )
        assert result.final_stored == pytest.approx(
            100.0 - busy_energy - idle_energy
        )

    def test_zero_idle_power_draws_nothing_when_idle(self):
        result = run_idle(0.0, ConstantSource(0.0), capacity=100.0)
        assert result.drawn_energy == pytest.approx(3.2)

    def test_brownout_when_storage_empty(self):
        """With an empty storage and zero harvest the idle draw browns
        out instead of wedging the simulation."""
        result = run_idle(
            0.5, ConstantSource(0.0), capacity=10.0, initial=3.2,
        )
        # The single job consumes the full initial charge; afterwards the
        # storage is empty and idle draw cannot be served.
        assert result.final_stored == pytest.approx(0.0, abs=1e-6)

    def test_idle_draw_resumes_with_harvest(self):
        """After a dark stretch, harvested energy serves the idle draw
        again (level stays bounded by capacity)."""
        source = TraceSource([0.0] * 10 + [2.0] * 40)
        result = run_idle(0.2, source, capacity=20.0, initial=5.0)
        assert 0.0 <= result.final_stored <= 20.0

    def test_energy_conservation_with_idle_draw(self):
        source = ConstantSource(0.5)
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")])
        result = run_idle(
            0.05, source, capacity=30.0, horizon=100.0, taskset=taskset,
        )
        balance = (
            30.0
            + result.harvested_energy
            - result.drawn_energy
            - result.overflow_energy
            - result.final_stored
        )
        assert balance == pytest.approx(0.0, abs=1e-6)
