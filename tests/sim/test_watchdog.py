"""Tests for the opt-in simulation watchdog."""

import math

import pytest

from repro.cpu.presets import xscale_pxa
from repro.energy.source import ConstantSource, SolarStochasticSource
from repro.energy.storage import IdealStorage, NonIdealStorage, SegmentResult
from repro.faults import BlackoutSource, OverrunWorkload
from repro.sched.base import Decision
from repro.sched.registry import make_scheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.sim.watchdog import (
    SimulationDiagnostics,
    SimulationWatchdog,
    WatchdogError,
)
from repro.tasks.task import PeriodicTask, TaskSet
from repro.tasks.workload import generate_paper_taskset


def paper_sim(scheduler="ea-dvfs", storage=None, config=None, seed=0):
    scale = xscale_pxa()
    source = SolarStochasticSource(seed=seed)
    taskset = generate_paper_taskset(
        n_tasks=5,
        utilization=0.4,
        mean_harvest_power=source.mean_power(),
        max_power=scale.max_power,
        seed=seed,
    )
    return HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=storage or IdealStorage(100.0),
        scheduler=make_scheduler(scheduler, scale),
        config=config or SimulationConfig(horizon=400.0, watchdog=True),
    )


class TestConfigValidation:
    def test_max_stalls_requires_watchdog(self):
        with pytest.raises(ValueError, match="requires watchdog=True"):
            SimulationConfig(horizon=10.0, watchdog_max_stalls=5)

    def test_max_stalls_must_be_positive(self):
        with pytest.raises(ValueError, match="watchdog_max_stalls"):
            SimulationConfig(horizon=10.0, watchdog=True, watchdog_max_stalls=0)

    def test_tolerance_must_be_positive_finite(self):
        with pytest.raises(ValueError, match="watchdog_energy_tolerance"):
            SimulationConfig(
                horizon=10.0, watchdog=True, watchdog_energy_tolerance=0.0
            )
        with pytest.raises(ValueError, match="max_consecutive_stalls"):
            SimulationWatchdog(max_consecutive_stalls=0)


class TestSegmentAudit:
    def ok_segment(self):
        # 1 time unit, harvest 2, draw 1: delta +1, drawn 1.
        return SegmentResult(drawn=1.0, stored_delta=1.0, overflow=0.0, leaked=0.0)

    def test_clean_segment_passes(self):
        wd = SimulationWatchdog()
        wd.observe_segment(0.0, 1.0, 2.0, 1.0, self.ok_segment(), IdealStorage(10.0, initial=5.0))
        assert wd.segments_checked == 1

    def test_backwards_segment_fails(self):
        wd = SimulationWatchdog()
        with pytest.raises(WatchdogError, match="backwards"):
            wd.observe_segment(
                5.0, 4.0, 0.0, 0.0,
                SegmentResult(drawn=0.0, stored_delta=0.0, overflow=0.0),
                IdealStorage(10.0),
            )

    def test_overlapping_segments_fail(self):
        wd = SimulationWatchdog()
        store = IdealStorage(10.0, initial=5.0)
        wd.observe_segment(0.0, 1.0, 2.0, 1.0, self.ok_segment(), store)
        with pytest.raises(WatchdogError, match="before the previous"):
            wd.observe_segment(0.5, 1.5, 2.0, 1.0, self.ok_segment(), store)

    def test_draw_mismatch_fails(self):
        wd = SimulationWatchdog()
        lying = SegmentResult(drawn=0.0, stored_delta=1.0, overflow=0.0)
        with pytest.raises(WatchdogError, match="disagrees with the commanded"):
            wd.observe_segment(0.0, 1.0, 2.0, 1.0, lying, IdealStorage(10.0))

    def test_energy_conjured_from_nowhere_fails(self):
        wd = SimulationWatchdog()
        # Harvest 0 over 1 unit, yet the store claims +5 while drawing 1.
        bogus = SegmentResult(drawn=1.0, stored_delta=5.0, overflow=0.0)
        with pytest.raises(WatchdogError, match="conservation"):
            wd.observe_segment(0.0, 1.0, 0.0, 1.0, bogus, IdealStorage(10.0))

    def test_unitemized_losses_are_legal(self):
        # Non-ideal storages under-account (conversion losses): fine.
        wd = SimulationWatchdog()
        lossy = SegmentResult(drawn=1.0, stored_delta=0.5, overflow=0.0)
        wd.observe_segment(0.0, 1.0, 2.0, 1.0, lossy, IdealStorage(10.0))
        assert wd.segments_checked == 1

    def test_level_above_capacity_fails(self):
        class Overfull(IdealStorage):
            @property
            def stored(self):
                return 20.0

        wd = SimulationWatchdog()
        with pytest.raises(WatchdogError, match="above capacity"):
            wd.observe_segment(
                0.0, 1.0, 2.0, 1.0, self.ok_segment(), Overfull(10.0)
            )


class TestDecisionAndStalls:
    def test_past_reconsider_fails(self):
        wd = SimulationWatchdog()
        decision = Decision.idle(reconsider_at=5.0)
        with pytest.raises(WatchdogError, match="reconsidered in the past"):
            wd.observe_decision(10.0, decision)

    def test_stall_limit(self):
        wd = SimulationWatchdog(max_consecutive_stalls=3)
        for _ in range(3):
            wd.observe_stall(1.0)
        with pytest.raises(WatchdogError, match="stall loop"):
            wd.observe_stall(1.0)

    def test_completion_resets_stall_counter(self):
        wd = SimulationWatchdog(max_consecutive_stalls=3)
        for _ in range(3):
            wd.observe_stall(1.0)
        wd.observe_completion()
        for _ in range(3):
            wd.observe_stall(2.0)  # does not raise: counter was reset

    def test_unlimited_stalls_by_default(self):
        wd = SimulationWatchdog()
        for _ in range(100):
            wd.observe_stall(0.0)


class TestDiagnostics:
    def test_error_carries_structured_report(self):
        wd = SimulationWatchdog()
        try:
            wd.observe_segment(
                0.0, 1.0, 0.0, 1.0,
                SegmentResult(drawn=1.0, stored_delta=5.0, overflow=0.0),
                IdealStorage(10.0, initial=5.0),
            )
        except WatchdogError as exc:
            diag = exc.diagnostics
            assert isinstance(diag, SimulationDiagnostics)
            assert "conservation" in diag.violation
            assert diag.time == 1.0
            assert diag.detail["accounted"] == pytest.approx(6.0)
            assert diag.detail["harvested"] == pytest.approx(0.0)
            assert "conservation" in diag.format_text()
            assert "accounted" in diag.format_text()
        else:  # pragma: no cover
            pytest.fail("expected WatchdogError")

    def test_healthy_snapshot(self):
        wd = SimulationWatchdog()
        diag = wd.snapshot(3.0)
        assert diag.violation == ""
        assert "ok" in diag.format_text()


class TestSimulatorIntegration:
    def test_clean_run_passes_and_matches_unwatched(self):
        watched = paper_sim(
            config=SimulationConfig(horizon=400.0, watchdog=True)
        ).run()
        plain = paper_sim(
            config=SimulationConfig(horizon=400.0, watchdog=False)
        ).run()
        assert watched.completed_count == plain.completed_count
        assert watched.missed_count == plain.missed_count
        assert watched.drawn_energy == pytest.approx(plain.drawn_energy)

    def test_clean_faulted_run_passes(self):
        # Fault wrappers keep the books balanced: the watchdog stays quiet.
        scale = xscale_pxa()
        source = BlackoutSource(
            SolarStochasticSource(seed=1), seed=2, start_probability=0.05
        )
        taskset = OverrunWorkload(
            generate_paper_taskset(
                n_tasks=5, utilization=0.4,
                mean_harvest_power=source.inner.mean_power(),
                max_power=scale.max_power, seed=1,
            ),
            seed=3,
            probability=0.2,
        )
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=NonIdealStorage(100.0, leakage_power=0.001),
            scheduler=make_scheduler("ea-dvfs", scale),
            config=SimulationConfig(horizon=400.0, watchdog=True),
        )
        result = sim.run()
        assert result.completed_count > 0

    def test_lying_storage_is_caught(self):
        class LyingStorage(IdealStorage):
            """Delivers energy but reports none of it as drawn."""

            def _advance_finite(self, duration, harvest_power, draw_power):
                seg = super()._advance_finite(duration, harvest_power, draw_power)
                return SegmentResult(
                    drawn=0.0,
                    stored_delta=seg.stored_delta,
                    overflow=seg.overflow,
                    leaked=seg.leaked,
                )

        sim = paper_sim(storage=LyingStorage(100.0))
        with pytest.raises(WatchdogError, match="disagrees with the commanded"):
            sim.run()

    def test_watchdog_off_by_default(self):
        config = SimulationConfig(horizon=10.0)
        assert config.watchdog is False
