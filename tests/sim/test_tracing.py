"""Unit tests for the trace recorder."""

import numpy as np
import pytest

from repro.sim.tracing import Trace, TraceKind, TraceRecord


class TestTraceRecord:
    def test_field_access(self):
        record = TraceRecord(time=1.0, kind="energy", fields={"stored": 5.0})
        assert record["stored"] == 5.0
        assert record.get("missing", 42) == 42

    def test_frozen(self):
        record = TraceRecord(time=1.0, kind="x")
        with pytest.raises(AttributeError):
            record.time = 2.0


class TestTraceRecording:
    def test_record_and_iterate(self):
        trace = Trace()
        trace.record(0.0, "a", value=1)
        trace.record(1.0, "b", value=2)
        assert len(trace) == 2
        assert [r.kind for r in trace] == ["a", "b"]
        assert trace[1]["value"] == 2

    def test_kind_filter_drops_unwanted(self):
        trace = Trace(kinds=["a"])
        trace.record(0.0, "a")
        trace.record(1.0, "b")
        assert len(trace) == 1
        assert trace.accepts("a")
        assert not trace.accepts("b")

    def test_unfiltered_accepts_everything(self):
        trace = Trace()
        for kind in TraceKind.ALL:
            assert trace.accepts(kind)

    def test_clear_keeps_filter(self):
        trace = Trace(kinds=["a"])
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0
        assert not trace.accepts("b")


class TestTraceQueries:
    @pytest.fixture
    def trace(self):
        trace = Trace()
        trace.record(0.0, "energy", stored=10.0)
        trace.record(1.0, "job_release", job="t1#0")
        trace.record(2.0, "energy", stored=8.0)
        trace.record(3.0, "energy", harvest=1.0)  # no 'stored' field
        return trace

    def test_by_kind(self, trace):
        assert len(trace.by_kind("energy")) == 3
        assert len(trace.by_kind("job_release")) == 1
        assert trace.by_kind("nothing") == []

    def test_count(self, trace):
        assert trace.count("energy") == 3
        assert trace.count("nope") == 0

    def test_times(self, trace):
        np.testing.assert_allclose(trace.times(), [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(trace.times("energy"), [0.0, 2.0, 3.0])

    def test_series_skips_missing_fields(self, trace):
        times, values = trace.series("energy", "stored")
        np.testing.assert_allclose(times, [0.0, 2.0])
        np.testing.assert_allclose(values, [10.0, 8.0])

    def test_filter_predicate(self, trace):
        late = trace.filter(lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_records_snapshot_is_immutable_copy(self, trace):
        snapshot = trace.records
        trace.record(9.0, "energy")
        assert len(snapshot) == 4
        assert len(trace.records) == 5
