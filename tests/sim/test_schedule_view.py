"""Tests for schedule reconstruction and Gantt rendering."""

import pytest

from repro.experiments.motivation import (
    run_motivational_example,
    run_stretch_example,
)
from repro.sim.schedule_view import (
    ExecutionInterval,
    render_gantt,
    schedule_intervals,
)
from repro.sim.tracing import Trace, TraceKind


def synthetic_trace():
    """A hand-built trace: A runs, is preempted by B, resumes, completes."""
    trace = Trace()
    trace.record(0.0, TraceKind.JOB_START, job="A", speed=0.5)
    trace.record(0.0, TraceKind.FREQ_CHANGE, speed=0.5, power=1.0)
    trace.record(2.0, TraceKind.JOB_PREEMPT, job="A", by="B")
    trace.record(2.0, TraceKind.JOB_START, job="B", speed=1.0)
    trace.record(3.0, TraceKind.JOB_COMPLETE, job="B", lateness=-1.0, energy=1.0)
    trace.record(3.0, TraceKind.JOB_START, job="A", speed=0.5)
    trace.record(5.0, TraceKind.FREQ_CHANGE, speed=1.0, power=8.0)
    trace.record(6.0, TraceKind.JOB_COMPLETE, job="A", lateness=-2.0, energy=2.0)
    return trace


class TestScheduleIntervals:
    def test_reconstruction(self):
        intervals = schedule_intervals(synthetic_trace())
        assert intervals == [
            ExecutionInterval(job="A", start=0.0, end=2.0, speed=0.5),
            ExecutionInterval(job="B", start=2.0, end=3.0, speed=1.0),
            ExecutionInterval(job="A", start=3.0, end=5.0, speed=0.5),
            ExecutionInterval(job="A", start=5.0, end=6.0, speed=1.0),
        ]

    def test_total_busy_time(self):
        intervals = schedule_intervals(synthetic_trace())
        assert sum(i.duration for i in intervals) == pytest.approx(6.0)

    def test_open_interval_closed_at_end_time(self):
        trace = Trace()
        trace.record(1.0, TraceKind.JOB_START, job="A", speed=1.0)
        intervals = schedule_intervals(trace, end_time=4.0)
        assert intervals == [
            ExecutionInterval(job="A", start=1.0, end=4.0, speed=1.0)
        ]

    def test_open_interval_dropped_without_end_time(self):
        trace = Trace()
        trace.record(1.0, TraceKind.JOB_START, job="A", speed=1.0)
        assert schedule_intervals(trace) == []

    def test_stall_closes_interval(self):
        trace = Trace()
        trace.record(0.0, TraceKind.JOB_START, job="A", speed=1.0)
        trace.record(2.0, TraceKind.STALL, job="A", resume_at=3.0)
        intervals = schedule_intervals(trace)
        assert intervals == [
            ExecutionInterval(job="A", start=0.0, end=2.0, speed=1.0)
        ]

    def test_empty_trace(self):
        assert schedule_intervals(Trace()) == []


class TestRenderGantt:
    def test_rows_and_glyphs(self):
        chart = render_gantt(synthetic_trace(), width=60)
        lines = chart.splitlines()
        assert lines[0].startswith("A |") or lines[0].strip().startswith("A")
        assert "#" in chart  # full-speed stretch of A
        assert "5" in chart  # half-speed glyph
        assert "full speed" in chart

    def test_respects_job_order(self):
        chart = render_gantt(synthetic_trace(), jobs=["B", "A"])
        lines = chart.splitlines()
        assert lines[0].lstrip().startswith("B")

    def test_empty_trace_message(self):
        assert "no execution" in render_gantt(Trace())

    def test_window_filters_jobs(self):
        """Jobs executing entirely outside the window get no row."""
        chart = render_gantt(synthetic_trace(), t0=2.0, t1=3.0)
        lines = [l for l in chart.splitlines() if "|" in l]
        assert any(l.lstrip().startswith("B") for l in lines)
        # A ran only in [0,2) and [3,6) — outside (2,3).
        assert not any(l.lstrip().startswith("A ") for l in lines)

    def test_row_cap_with_note(self):
        trace = Trace()
        for i in range(8):
            trace.record(float(i), TraceKind.JOB_START, job=f"j{i}",
                         speed=1.0)
            trace.record(float(i) + 0.5, TraceKind.JOB_COMPLETE,
                         job=f"j{i}", lateness=0.0, energy=1.0)
        chart = render_gantt(trace, max_rows=3)
        assert "+5 more jobs not shown" in chart
        assert chart.count("|") >= 3

    def test_invalid_max_rows(self):
        with pytest.raises(ValueError, match="max_rows"):
            render_gantt(synthetic_trace(), max_rows=0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="empty window"):
            render_gantt(synthetic_trace(), t0=10.0, t1=5.0)
        with pytest.raises(ValueError, match="width"):
            render_gantt(synthetic_trace(), width=3)


class TestAgainstRealRuns:
    def test_motivational_ea_dvfs_gantt(self):
        """EA-DVFS in Figure 1: tau1 executes at half speed over [4, 12]."""
        outcome = run_motivational_example("ea-dvfs")
        intervals = schedule_intervals(outcome.result.trace)
        tau1 = [i for i in intervals if i.job == "tau1#0"]
        assert tau1[0].start == pytest.approx(4.0)
        assert tau1[-1].end == pytest.approx(12.0)
        assert all(i.speed == pytest.approx(0.5) for i in tau1)

    def test_figure3_shows_speed_switch(self):
        """EA-DVFS in Figure 3 runs tau1 slow then at full speed."""
        outcome = run_stretch_example("ea-dvfs")
        intervals = schedule_intervals(outcome.result.trace)
        tau1_speeds = [i.speed for i in intervals if i.job == "tau1#0"]
        assert tau1_speeds[0] == pytest.approx(0.25)
        assert tau1_speeds[-1] == pytest.approx(1.0)

    def test_gantt_renders_real_trace(self):
        outcome = run_motivational_example("lsa")
        chart = render_gantt(outcome.result.trace, t0=0.0, t1=25.0)
        assert "tau1#0" in chart
