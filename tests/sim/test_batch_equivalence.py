"""Differential equivalence: the vectorized batch engine vs scalar.

The batch engine's contract (``docs/batch-simulation.md``): identical
deadline decisions and counters, energies equal within 1e-9, on every
world it claims to cover — and a counted, journaled scalar fallback on
every world it does not.  This suite enforces the contract end to end:

* a tier-1 smoke (the batch core importable and agreeing with the
  scalar simulator on a small sweep grid and on seeded random worlds);
* the N-seeded differential harness (``repro verify --batch``) with
  minimal-reproducing-seed reporting;
* the array-only job-generation path against ``TaskSet.jobs``;
* the supervisor/``SweepReport`` engine routing and journal mixing.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.parallel import RunSpec
from repro.experiments.common import PaperSetup
from repro.runtime import ResultJournal, run_supervised
from repro.runtime.sweep import ENGINE_ENV, engine_from_env
from repro.sim.batch import (
    _BatchCore,
    _periodic_job_arrays,
    _runspec_lane,
    execute_runspecs,
    run_scenario_batch,
    runspec_fallback_reason,
    scenario_fallback_reason,
)
from repro.sim.simulator import SimulationResult
from repro.verify.batch_equivalence import (
    BatchEquivalenceReport,
    compare_results,
    run_batch_equivalence,
)
from repro.verify.differential import Discrepancy
from repro.verify.scenarios import FaultPlan, ScenarioSpec, TaskParams

ORACLE_SETUP = PaperSetup(horizon=400.0, predictor_kind="oracle")


def _grid(setup=ORACLE_SETUP, seeds=2, capacities=(40.0, 150.0)):
    return [
        RunSpec(
            scheduler_name=name,
            utilization=0.4,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for capacity in capacities
        for name in ("lsa", "ea-dvfs")
        for seed in range(seeds)
    ]


class TestTier1Smoke:
    def test_batch_agrees_with_scalar_on_tiny_sweep(self):
        specs = _grid()
        outcomes, reasons = execute_runspecs(specs, slim=True)
        assert reasons == {}
        for spec, batch_result in zip(specs, outcomes):
            assert isinstance(batch_result, SimulationResult)
            scalar = spec.setup.run(
                spec.scheduler_name, spec.utilization, spec.capacity,
                spec.seed,
            )
            assert compare_results(scalar, batch_result) == []

    @pytest.mark.parametrize(
        "kind", ["oracle", "profile", "mean", "last-value"]
    )
    def test_every_predictor_kind_vectorized(self, kind):
        # The tentpole contract: no predictor kind falls back, and each
        # one's batch run matches the scalar reference bit-for-bit on
        # counters (1e-9 on energies).
        setup = PaperSetup(horizon=400.0, predictor_kind=kind)
        specs = _grid(setup=setup, seeds=1)
        outcomes, reasons = execute_runspecs(specs, slim=True)
        assert reasons == {}
        for spec, batch_result in zip(specs, outcomes):
            assert isinstance(batch_result, SimulationResult)
            scalar = spec.setup.run(
                spec.scheduler_name, spec.utilization, spec.capacity,
                spec.seed,
            )
            assert compare_results(scalar, batch_result) == []

    def test_scenario_worlds_agree(self):
        report = run_batch_equivalence(n=6, seed=0, allow_faults=False)
        assert report.ok, report.format_text()
        assert report.batch_cells > 0
        assert report.simulations_run > 0

    def test_high_miss_world_agrees(self):
        # An energy-starved, barely-schedulable world: misses everywhere,
        # so the deadline/drop bookkeeping is exercised hard.
        spec = ScenarioSpec(
            seed=0,  # constant source at 1.0 power: far below demand
            tasks=(TaskParams(period=10.0, wcet=9.0),),
            source_kind="constant",
            capacity=6.0,
            predictor_kind="oracle",
            horizon=200.0,
        )
        outcome = run_scenario_batch([spec], "ea-dvfs")
        assert outcome.fallbacks == 0
        batch_result = outcome.results[0]
        scalar = spec.run("ea-dvfs")
        assert scalar.missed_count > 0
        assert compare_results(scalar, batch_result) == []


@pytest.mark.slow
class TestSeededSweep:
    def test_sixty_faulted_worlds(self):
        report = run_batch_equivalence(n=60, seed=0, allow_faults=True)
        assert report.ok, report.format_text()
        # Faulted worlds must take the scalar fallback, clean oracle
        # worlds the core: both paths must appear at this width.
        assert report.batch_cells > 0
        assert report.fallback_cells > 0


class TestFallbackRouting:
    def test_runspec_fallback_reasons(self):
        covered = _grid(seeds=1)[0]
        assert runspec_fallback_reason(covered) is None
        # The default (profile) predictor is vectorized — no fallback.
        profile = dataclasses.replace(
            covered, setup=PaperSetup(horizon=400.0)
        )
        assert runspec_fallback_reason(profile) is None
        sampled = dataclasses.replace(covered, energy_sample_interval=10.0)
        assert "sampling" in str(runspec_fallback_reason(sampled))
        unknown = dataclasses.replace(covered, scheduler_name="stretch-edf")
        assert "not vectorized" in str(runspec_fallback_reason(unknown))
        infinite = dataclasses.replace(covered, capacity=math.inf)
        assert "infinite" in str(runspec_fallback_reason(infinite))

    def test_scenario_fallback_reasons(self):
        spec = ScenarioSpec(
            seed=0, tasks=(TaskParams(period=20.0, wcet=2.0),),
            predictor_kind="oracle",
        )
        assert scenario_fallback_reason(spec, "ea-dvfs") is None
        faulted = dataclasses.replace(
            spec, faults=FaultPlan(overrun=True)
        )
        assert scenario_fallback_reason(faulted, "ea-dvfs") == (
            "fault plan active"
        )
        # Every online predictor kind is vectorized now — no predictor
        # triggers a fallback under any covered scheduler.
        for kind in ("profile", "mean", "last-value"):
            online = dataclasses.replace(spec, predictor_kind=kind)
            for scheduler in ("lsa", "ea-dvfs", "edf"):
                assert scenario_fallback_reason(online, scheduler) is None

    def test_mixed_batch_counts_fallbacks(self):
        covered = _grid(seeds=1)[0]
        sampled = dataclasses.replace(covered, energy_sample_interval=10.0)
        outcomes, reasons = execute_runspecs([covered, sampled], slim=True)
        assert len(outcomes) == 2
        assert all(isinstance(o, SimulationResult) for o in outcomes)
        assert sum(reasons.values()) == 1
        assert any("sampling" in reason for reason in reasons)

    def test_empty_batch(self):
        outcomes, reasons = execute_runspecs([], slim=True)
        assert outcomes == []
        assert reasons == {}

    def test_default_grid_has_no_fallbacks(self):
        # Satellite regression: the default sweep grid (profile
        # predictor, finite capacity, no faults) must be fully
        # vectorized — an empty fallback histogram, not a silent
        # scalar sweep.
        specs = _grid(setup=PaperSetup(horizon=400.0))
        report = run_supervised(specs, engine="batch")
        assert report.engine == "batch"
        assert report.batch_fallbacks == 0
        assert report.fallback_reasons == {}
        assert all(
            isinstance(o, SimulationResult) for o in report.outcomes
        )

    def test_slim_lane_refuses_job_results(self):
        lane = _runspec_lane(_grid(seeds=1)[0], slim=True)
        assert lane.jobs is None  # the array-only fast path was taken
        core = _BatchCore([lane])
        core.run()
        assert core.errors[0] is None
        with pytest.raises(RuntimeError, match="slim"):
            core.result(0, include_jobs=True)


class TestArrayJobGeneration:
    def test_matches_taskset_jobs(self):
        setup = ORACLE_SETUP
        for seed in range(4):
            taskset = setup.taskset(seed, 0.5)
            arrays = _periodic_job_arrays(taskset, setup.horizon)
            assert arrays is not None
            jrelease, jdeadline, jwork, jtask, task_names = arrays
            jobs = list(taskset.jobs(setup.horizon, None))
            assert jrelease.shape[0] == len(jobs)
            for i, job in enumerate(jobs):
                # Bit-exact: the array path performs the same int*float
                # arithmetic as the scalar release generator.
                assert jrelease[i] == job.release
                assert jdeadline[i] == job.absolute_deadline
                assert jwork[i] == job.wcet
                assert task_names[int(jtask[i])] == job.task.name

    def test_non_periodic_taskset_returns_none(self):
        from repro.faults import OverrunWorkload

        taskset = OverrunWorkload(
            ORACLE_SETUP.taskset(0, 0.4), seed=0
        )
        assert _periodic_job_arrays(taskset, 400.0) is None


class TestSupervisorEngine:
    def test_batch_engine_matches_scalar_engine(self):
        specs = _grid()
        scalar_report = run_supervised(specs)
        batch_report = run_supervised(specs, engine="batch")
        assert scalar_report.engine == "scalar"
        assert batch_report.engine == "batch"
        assert batch_report.batch_fallbacks == 0
        assert "engine: batch (0 scalar fallback(s))" in (
            batch_report.format_text()
        )
        assert "engine:" not in scalar_report.format_text()
        for scalar, batch in zip(
            scalar_report.outcomes, batch_report.outcomes
        ):
            assert isinstance(scalar, SimulationResult)
            assert isinstance(batch, SimulationResult)
            assert compare_results(scalar, batch) == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_supervised(_grid(seeds=1), engine="warp")

    def test_journal_entries_mix_across_engines(self, tmp_path):
        specs = _grid(seeds=1)
        path = tmp_path / "sweep.journal"
        journal = ResultJournal(path)
        try:
            first = run_supervised(specs, journal=journal, engine="scalar")
        finally:
            journal.close()
        assert first.executed == len(specs)
        journal = ResultJournal(path)
        try:
            second = run_supervised(specs, journal=journal, engine="batch")
        finally:
            journal.close()
        # Scalar-journaled cells satisfy the batch run untouched: the
        # engines are interchangeable at the journal layer.
        assert second.executed == 0
        assert second.journal_hits == len(specs)

    def test_engine_from_env(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert engine_from_env() == "scalar"
        assert engine_from_env(default="batch") == "batch"
        monkeypatch.setenv(ENGINE_ENV, "batch")
        assert engine_from_env() == "batch"
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        # The env var wins over the caller's default.
        assert engine_from_env(default="batch") == "scalar"
        monkeypatch.setenv(ENGINE_ENV, "warp")
        with pytest.raises(ValueError, match=ENGINE_ENV):
            engine_from_env()

    def test_resume_does_not_recount_fallbacks(self, tmp_path):
        # Satellite regression: fallback tallies count only cells
        # executed in *this* run.  A journal-resumed sweep re-serves
        # every cell from the journal and must report zero fallbacks,
        # not re-add the first run's histogram.
        covered = _grid(seeds=1)[0]
        sampled = dataclasses.replace(
            covered, energy_sample_interval=10.0
        )
        specs = [covered, sampled]
        path = tmp_path / "sweep.journal"
        journal = ResultJournal(path)
        try:
            first = run_supervised(specs, journal=journal, engine="batch")
        finally:
            journal.close()
        assert first.batch_fallbacks == 1
        assert first.fallback_reasons == {
            "energy sampling requested": 1
        }
        journal = ResultJournal(path)
        try:
            second = run_supervised(specs, journal=journal, engine="batch")
        finally:
            journal.close()
        assert second.journal_hits == len(specs)
        assert second.executed == 0
        assert second.batch_fallbacks == 0
        assert second.fallback_reasons == {}


class TestReporting:
    def test_minimal_seed_and_format(self):
        report = BatchEquivalenceReport(n_scenarios=10, base_seed=0)
        for seed in (7, 3):
            report.discrepancies.append(Discrepancy(
                seed=seed, check="batch-equivalence[lsa]",
                detail="missed_count: scalar 1 != batch 2",
                scenario=f"seed={seed}",
            ))
        assert not report.ok
        assert report.minimal_seed == 3
        text = report.format_text()
        assert "minimal reproducing seed: 3" in text
        assert "DISCREPANCIES" in text

    def test_compare_results_detects_divergence(self):
        spec = _grid(seeds=1)[0]
        result = spec.setup.run(
            spec.scheduler_name, spec.utilization, spec.capacity, spec.seed
        )
        assert compare_results(result, result) == []
        skewed = dataclasses.replace(
            result, missed_count=result.missed_count + 1,
            drawn_energy=result.drawn_energy + 1e-3,
        )
        problems = compare_results(result, skewed)
        assert any("missed_count" in p for p in problems)
        assert any("drawn_energy" in p for p in problems)

    def test_compare_results_ignores_trace(self):
        from repro.sim.tracing import Trace

        spec = _grid(seeds=1)[0]
        result = spec.setup.run(
            spec.scheduler_name, spec.utilization, spec.capacity, spec.seed
        )
        retraced = dataclasses.replace(result, trace=Trace())
        assert compare_results(result, retraced) == []

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError, match="n must be"):
            run_batch_equivalence(n=0)

    def test_progress_callback(self):
        calls: list[tuple[int, int]] = []
        run_batch_equivalence(
            n=1, seed=3, allow_faults=False,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls
        assert calls[-1][0] == calls[-1][1] == len(calls)


def test_numpy_event_order_is_deterministic():
    # Guards the static event-table build: equal (time, priority) keys
    # must keep their sequence order (np.lexsort stability), or deadline
    # processing could reorder against the scalar heap.
    times = np.asarray([5.0, 5.0, 1.0, 5.0])
    prio = np.asarray([1, 0, 1, 0], dtype=np.int64)
    seq = np.arange(4, dtype=np.int64)
    order = np.lexsort((seq, prio, times))
    assert order.tolist() == [2, 1, 3, 0]
