"""Integration tests for the harvesting real-time simulator."""

import math

import pytest

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.dvfs import SwitchingOverhead
from repro.cpu.processor import Processor
from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource, SolarStochasticSource, TraceSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.sim.simulator import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
)
from repro.sim.tracing import TraceKind
from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet


def simulate(
    taskset,
    scheduler_cls=GreedyEdfScheduler,
    scale=None,
    source=None,
    capacity=1e6,
    initial=None,
    horizon=100.0,
    trace_kinds=(),
    sample_interval=None,
    miss_policy=DeadlineMissPolicy.DROP,
    processor=None,
    scheduler=None,
):
    scale = scale or xscale_pxa()
    source = source or ConstantSource(0.0)
    scheduler = scheduler or scheduler_cls(scale)
    sim = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=IdealStorage(capacity=capacity, initial=initial),
        scheduler=scheduler,
        predictor=OraclePredictor(source),
        processor=processor,
        config=SimulationConfig(
            horizon=horizon,
            trace_kinds=tuple(trace_kinds),
            energy_sample_interval=sample_interval,
            miss_policy=miss_policy,
        ),
    )
    return sim.run()


class TestBasicExecution:
    def test_single_job_completes(self):
        taskset = TaskSet([AperiodicTask(0.0, 10.0, 2.0, name="t")])
        result = simulate(taskset)
        assert result.completed_count == 1
        assert result.missed_count == 0
        (job,) = result.jobs
        assert job.completion_time == pytest.approx(2.0)

    def test_periodic_jobs_all_complete(self):
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")])
        result = simulate(taskset, horizon=100.0)
        assert result.released_count == 10
        assert result.completed_count == 10
        assert result.miss_rate == 0.0

    def test_edf_order_under_contention(self):
        """A later-released, earlier-deadline job preempts."""
        taskset = TaskSet(
            [
                AperiodicTask(0.0, 50.0, 10.0, name="long"),
                AperiodicTask(2.0, 10.0, 1.0, name="urgent"),
            ]
        )
        result = simulate(taskset, trace_kinds=(TraceKind.JOB_PREEMPT,))
        by_name = {j.task.name: j for j in result.jobs}
        assert by_name["urgent"].completion_time == pytest.approx(3.0)
        assert by_name["long"].completion_time == pytest.approx(11.0)
        assert result.trace.count(TraceKind.JOB_PREEMPT) == 1

    def test_processor_busy_time_accounted(self):
        taskset = TaskSet([AperiodicTask(0.0, 10.0, 2.0, name="t")])
        result = simulate(taskset, horizon=10.0)
        assert result.total_busy_time == pytest.approx(2.0)
        assert result.idle_time == pytest.approx(8.0)

    def test_simulator_single_use(self):
        taskset = TaskSet([AperiodicTask(0.0, 10.0, 2.0, name="t")])
        scale = xscale_pxa()
        source = ConstantSource(0.0)
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=IdealStorage(capacity=10.0),
            scheduler=GreedyEdfScheduler(scale),
            config=SimulationConfig(horizon=20.0),
        )
        sim.run()
        with pytest.raises(RuntimeError, match="only run once"):
            sim.run()


class TestDeadlineHandling:
    def test_overload_misses_are_counted(self):
        """Two simultaneous jobs, only time for one."""
        taskset = TaskSet(
            [
                AperiodicTask(0.0, 10.0, 8.0, name="a"),
                AperiodicTask(0.0, 10.0, 8.0, name="b"),
            ]
        )
        result = simulate(taskset, horizon=50.0)
        assert result.completed_count == 1
        assert result.missed_count == 1
        assert result.miss_rate == pytest.approx(0.5)

    def test_drop_policy_aborts_job(self):
        taskset = TaskSet(
            [
                AperiodicTask(0.0, 10.0, 8.0, name="a"),
                AperiodicTask(0.0, 10.0, 8.0, name="b"),
            ]
        )
        result = simulate(taskset, horizon=50.0,
                          miss_policy=DeadlineMissPolicy.DROP)
        missed = [j for j in result.jobs if j.completion_time is None]
        assert len(missed) == 1
        assert missed[0].remaining_work > 0

    def test_continue_policy_finishes_late(self):
        taskset = TaskSet(
            [
                AperiodicTask(0.0, 10.0, 8.0, name="a"),
                AperiodicTask(0.0, 10.0, 8.0, name="b"),
            ]
        )
        result = simulate(taskset, horizon=50.0,
                          miss_policy=DeadlineMissPolicy.CONTINUE)
        assert result.missed_count == 1
        assert result.completed_count == 2  # the late one still finishes
        late = [j for j in result.jobs if j.lateness and j.lateness > 0]
        assert len(late) == 1

    def test_completion_exactly_at_deadline_is_met(self):
        taskset = TaskSet([AperiodicTask(0.0, 2.0, 2.0, name="t")])
        result = simulate(taskset)
        assert result.missed_count == 0
        assert result.completed_count == 1

    def test_jobs_with_deadline_beyond_horizon_not_judged(self):
        taskset = TaskSet([AperiodicTask(0.0, 100.0, 50.0, name="t")])
        result = simulate(taskset, horizon=10.0)
        assert result.released_count == 1
        assert result.judged_count == 0
        assert result.miss_rate == 0.0

    def test_per_task_breakdown(self):
        taskset = TaskSet(
            [
                AperiodicTask(0.0, 10.0, 8.0, name="a"),
                AperiodicTask(0.0, 10.0, 8.0, name="b"),
            ]
        )
        result = simulate(taskset, horizon=50.0)
        assert result.per_task_released == {"a": 1, "b": 1}
        assert sum(result.per_task_missed.values()) == 1


class TestEnergyConstrainedExecution:
    def test_greedy_edf_stalls_without_energy(self):
        """Storage 16 covers 2 units at P_max=3.2... no: 16/3.2 = 5 units.
        A 10-unit job with zero harvest must stall and miss."""
        taskset = TaskSet([AperiodicTask(0.0, 20.0, 10.0, name="t")])
        result = simulate(
            taskset, capacity=16.0, source=ConstantSource(0.0), horizon=30.0,
            trace_kinds=(TraceKind.STALL,),
        )
        assert result.missed_count == 1
        assert result.stall_count >= 1
        assert result.trace.count(TraceKind.STALL) == result.stall_count

    def test_stall_recovers_when_harvest_returns(self):
        """Harvest 0 for 10 units, then plenty: the job finishes late but
        within its generous deadline."""
        source = TraceSource([0.0] * 10 + [10.0] * 90)
        taskset = TaskSet([AperiodicTask(0.0, 90.0, 10.0, name="t")])
        result = simulate(
            taskset, capacity=16.0, initial=16.0, source=source, horizon=100.0
        )
        assert result.completed_count == 1
        (job,) = result.jobs
        assert job.completion_time > 10.0

    def test_energy_conservation(self):
        """harvest + initial == drawn + overflow + final stored."""
        source = SolarStochasticSource(seed=3)
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=2.0, name="t")])
        result = simulate(
            taskset, capacity=50.0, source=source, horizon=200.0
        )
        balance = (
            result.harvested_energy
            + 50.0  # initial (storage starts full)
            - result.drawn_energy
            - result.overflow_energy
            - result.final_stored
        )
        assert balance == pytest.approx(0.0, abs=1e-6 * result.harvested_energy)

    def test_overflow_recorded_when_idle_and_full(self):
        source = ConstantSource(5.0)
        taskset = TaskSet([AperiodicTask(0.0, 10.0, 1.0, name="t")])
        result = simulate(taskset, capacity=10.0, source=source, horizon=50.0)
        assert result.overflow_energy > 0

    def test_drawn_energy_matches_job_consumption(self):
        taskset = TaskSet([AperiodicTask(0.0, 10.0, 2.0, name="t")])
        result = simulate(taskset, capacity=100.0, horizon=20.0)
        (job,) = result.jobs
        assert job.energy_consumed == pytest.approx(2.0 * 3.2)
        assert result.drawn_energy == pytest.approx(job.energy_consumed)


class TestEnergyTraceSampling:
    def test_samples_on_grid(self):
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")])
        result = simulate(
            taskset, horizon=50.0, trace_kinds=(TraceKind.ENERGY,),
            sample_interval=5.0, capacity=100.0,
        )
        times = result.trace.times(TraceKind.ENERGY)
        # Grid samples plus a final one at the horizon.
        assert list(times) == pytest.approx([0.0, 5.0, 10.0, 15.0, 20.0,
                                             25.0, 30.0, 35.0, 40.0, 45.0,
                                             50.0])

    def test_sampled_fraction_in_unit_range(self):
        source = SolarStochasticSource(seed=8)
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=3.0, name="t")])
        result = simulate(
            taskset, capacity=30.0, source=source, horizon=100.0,
            trace_kinds=(TraceKind.ENERGY,), sample_interval=1.0,
        )
        _, fractions = result.trace.series(TraceKind.ENERGY, "fraction")
        assert ((fractions >= 0.0) & (fractions <= 1.0)).all()


class TestSwitchingOverheadAblation:
    # Scenario engineered so the EA-DVFS s2 switch fires: two-speed scale,
    # task (0, 16, 4), stored 20, harvest 0.5 -> E_avail = 28, s1 = 5.5,
    # s2 = 12.5; the slow phase covers only 3.5 of 4 work units, so the
    # last half unit runs at full speed after the switch (completion 13).
    def _scenario(self, processor=None, scale=None):
        from repro.cpu.presets import motivational_example_scale

        scale = scale or motivational_example_scale()
        taskset = TaskSet([AperiodicTask(0.0, 16.0, 4.0, name="t")])
        return simulate(
            taskset,
            scheduler=EaDvfsScheduler(scale),
            processor=processor,
            capacity=30.0,
            initial=20.0,
            source=ConstantSource(0.5),
            horizon=30.0,
            scale=scale,
        )

    def test_switch_fires_and_job_completes(self):
        result = self._scenario()
        assert result.switch_count >= 1
        assert result.completed_count == 1
        assert result.jobs[0].completion_time == pytest.approx(13.0)

    def test_switch_energy_charged(self):
        from repro.cpu.presets import motivational_example_scale

        scale = motivational_example_scale()
        processor = Processor(
            scale, overhead=SwitchingOverhead(time=0.0, energy=1.0)
        )
        result = self._scenario(processor=processor, scale=scale)
        assert result.switch_count >= 1
        assert result.completed_count == 1

    def test_switch_time_delays_completion(self):
        from repro.cpu.presets import motivational_example_scale

        free = self._scenario()
        scale = motivational_example_scale()
        costly_cpu = Processor(
            scale, overhead=SwitchingOverhead(time=0.5, energy=0.0)
        )
        costly = self._scenario(processor=costly_cpu, scale=scale)
        assert costly.switch_count >= 1
        assert costly.jobs[0].completion_time > free.jobs[0].completion_time


class TestNonIdealStorageIntegration:
    def test_lossy_storage_stall_uses_net_flow(self):
        """Regression: with conversion losses the store can drain even
        when raw draw < raw harvest; the simulator must stall on the
        *net flow*, not on the raw power comparison, or it wedges in a
        zero-progress loop."""
        from repro.energy.storage import NonIdealStorage

        scale = xscale_pxa()
        # harvest 3.6 > draw 3.2, but eta 0.9/0.9 makes the net flow
        # 3.24 - 3.556 = -0.316: a 1-unit store drains in ~3.2 time
        # units of execution, well inside the 6-unit job.
        source = ConstantSource(3.6)
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=6.0, name="t")])
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=NonIdealStorage(
                capacity=1.0, charge_efficiency=0.9,
                discharge_efficiency=0.9,
            ),
            scheduler=GreedyEdfScheduler(scale),
            predictor=OraclePredictor(source),
            config=SimulationConfig(horizon=200.0),
        )
        result = sim.run()  # must terminate
        assert result.stall_count > 0
        assert result.released_count == 20

    def test_lossy_storage_full_run_with_leakage(self):
        from repro.energy.storage import NonIdealStorage

        source = SolarStochasticSource(seed=5)
        taskset = TaskSet([PeriodicTask(period=20.0, wcet=4.0, name="t")])
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=NonIdealStorage(
                capacity=50.0, charge_efficiency=0.9,
                discharge_efficiency=0.9, leakage_power=0.05,
            ),
            scheduler=GreedyEdfScheduler(xscale_pxa()),
            predictor=OraclePredictor(source),
            config=SimulationConfig(horizon=1000.0),
        )
        result = sim.run()
        assert result.leaked_energy > 0
        assert 0.0 <= result.miss_rate <= 1.0


class TestMismatchedConfiguration:
    def test_processor_scale_must_match_scheduler(self):
        scale_a = xscale_pxa()
        from repro.cpu.presets import motivational_example_scale

        with pytest.raises(ValueError, match="different frequency scales"):
            HarvestingRtSimulator(
                taskset=TaskSet([AperiodicTask(0.0, 10.0, 1.0, name="t")]),
                source=ConstantSource(0.0),
                storage=IdealStorage(capacity=10.0),
                scheduler=GreedyEdfScheduler(scale_a),
                processor=Processor(motivational_example_scale()),
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(horizon=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(trace_kinds=("bogus",))
        with pytest.raises(ValueError):
            SimulationConfig(energy_sample_interval=0.0)


class TestLongStochasticRuns:
    @pytest.mark.parametrize("scheduler_cls", [
        GreedyEdfScheduler, LazyScheduler, EaDvfsScheduler,
    ])
    def test_runs_to_horizon_without_errors(self, scheduler_cls):
        source = SolarStochasticSource(seed=17)
        taskset = TaskSet(
            [
                PeriodicTask(period=30.0, wcet=5.0, name="a"),
                PeriodicTask(period=50.0, wcet=8.0, name="b"),
                PeriodicTask(period=20.0, wcet=2.0, name="c"),
            ]
        )
        result = simulate(
            taskset, scheduler_cls=scheduler_cls, source=source,
            capacity=100.0, horizon=2000.0,
        )
        assert result.released_count == 67 + 40 + 100
        assert result.completed_count + result.missed_count <= result.released_count
        assert 0.0 <= result.miss_rate <= 1.0

    def test_summary_renders(self):
        taskset = TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")])
        result = simulate(taskset, horizon=50.0)
        text = result.summary()
        assert "miss_rate" in text
        assert "edf" in text
