"""Unit tests for the discrete-event kernel."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import EventQueue, SimulationClock


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_custom_start(self):
        assert SimulationClock(5.0).now == 5.0

    def test_infinite_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(math.inf)

    def test_advance(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_backwards_rejected(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.0)

    def test_tiny_backwards_noise_tolerated(self):
        clock = SimulationClock(10.0)
        clock.advance_to(10.0 - 1e-12)
        assert clock.now == 10.0

    def test_nan_target_rejected(self):
        clock = SimulationClock(5.0)
        with pytest.raises(ValueError, match="NaN"):
            clock.advance_to(math.nan)
        assert clock.now == 5.0


class TestClockDriftAccumulation:
    """Sub-EPSILON backwards drift is snapped, never stored.

    A clock that *stored* the slightly-past target would let thousands of
    tiny float-noise regressions accumulate into a real backwards move;
    these properties pin the snapping behavior down.
    """

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_now_equals_running_maximum(self, targets):
        clock = SimulationClock()
        high = 0.0
        for t in targets:
            if t >= clock.now - 1e-9:
                clock.advance_to(t)
                high = max(high, t)
        assert clock.now == high

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=1e-13, max_value=9e-10),
    )
    def test_repeated_sub_epsilon_drift_never_accumulates(self, n, drift):
        clock = SimulationClock(10.0)
        for _ in range(min(n, 500)):
            clock.advance_to(10.0 - drift)
        assert clock.now == 10.0

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-13, max_value=9e-10),
    )
    def test_drift_then_advance_is_exact(self, start, drift):
        clock = SimulationClock(start)
        clock.advance_to(start - drift)
        clock.advance_to(start + 1.0)
        assert clock.now == start + 1.0

    @given(st.floats(min_value=1e-8, max_value=1.0))
    def test_real_regression_still_rejected(self, gap):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(10.0 - max(gap, 1e-8))


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0, "c")
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.schedule(1.0, "late", priority=5)
        q.schedule(1.0, "early", priority=0)
        assert q.pop().kind == "early"
        assert q.pop().kind == "late"

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        first = q.schedule(1.0, "x", payload=1)
        second = q.schedule(1.0, "x", payload=2)
        assert q.pop() is first
        assert q.pop() is second

    def test_pop_advances_clock(self):
        q = EventQueue()
        q.schedule(7.5, "x")
        q.pop()
        assert q.now == 7.5

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.schedule(t, "e")
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)


class TestEventQueueScheduling:
    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        with pytest.raises(ValueError, match="into the past"):
            q.schedule(1.0, "y")

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            EventQueue().schedule(math.nan, "x")

    def test_schedule_after(self):
        q = EventQueue()
        q.schedule(2.0, "first")
        q.pop()
        event = q.schedule_after(3.0, "second")
        assert event.time == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().schedule_after(-1.0, "x")

    def test_slightly_past_snaps_to_now(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        event = q.schedule(5.0 - 1e-12, "y")
        assert event.time == 5.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        doomed = q.schedule(1.0, "doomed")
        q.schedule(2.0, "kept")
        q.cancel(doomed)
        assert len(q) == 1
        assert q.pop().kind == "kept"

    def test_cancel_idempotent(self):
        q = EventQueue()
        event = q.schedule(1.0, "x")
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        doomed = q.schedule(1.0, "doomed")
        q.schedule(4.0, "kept")
        q.cancel(doomed)
        assert q.peek_time() == 4.0

    def test_empty_peek_is_inf(self):
        assert EventQueue().peek_time() == math.inf

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestRun:
    def test_callbacks_dispatched(self):
        q = EventQueue()
        seen = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, "tick", callback=lambda e: seen.append(e.time))
        dispatched = q.run()
        assert dispatched == 3
        assert seen == [1.0, 2.0, 3.0]

    def test_until_is_half_open(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, "in", callback=lambda e: seen.append(e.kind))
        q.schedule(2.0, "out", callback=lambda e: seen.append(e.kind))
        q.run(until=2.0)
        assert seen == ["in"]
        assert q.now == 2.0  # clock still advances to the horizon

    def test_callback_may_schedule_more(self):
        q = EventQueue()
        count = 0

        def chain(event):
            nonlocal count
            count += 1
            if count < 5:
                q.schedule_after(1.0, "chain", callback=chain)

        q.schedule(0.0, "chain", callback=chain)
        q.run()
        assert count == 5
        assert q.now == 4.0

    def test_max_events_limit(self):
        q = EventQueue()
        for t in range(10):
            q.schedule(float(t), "e")
        assert q.run(max_events=4) == 4
        assert len(q) == 6

    def test_drain_yields_in_order(self):
        q = EventQueue()
        q.schedule(2.0, "b")
        q.schedule(1.0, "a")
        assert [e.kind for e in q.drain()] == ["a", "b"]

    def test_processed_count(self):
        q = EventQueue()
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        q.run()
        assert q.processed_count == 2


class TestCancelAfterPop:
    """Regression tests for the live-count invariant around stale handles.

    ``pop`` removes the event from the heap; cancelling the returned
    handle afterwards used to decrement ``_live`` a second time, making
    the queue report fewer live events than it holds (``run``/``drain``
    then stop early with real events still queued).
    """

    def test_cancel_after_pop_keeps_live_count(self):
        q = EventQueue()
        first = q.schedule(1.0, "first")
        q.schedule(2.0, "second")
        assert q.pop() is first
        q.cancel(first)  # stale handle: must be a no-op
        assert len(q) == 1
        assert bool(q)
        assert q.pop().kind == "second"

    def test_cancel_after_pop_does_not_truncate_run(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, "tick", callback=lambda e: q.cancel(e))
        for t in (2.0, 3.0):
            q.schedule(t, "tick", callback=lambda e: seen.append(e.time))
        assert q.run() == 3
        assert seen == [2.0, 3.0]

    def test_popped_event_not_marked_cancelled(self):
        q = EventQueue()
        event = q.schedule(1.0, "x")
        q.pop()
        q.cancel(event)
        assert not event.cancelled
        assert event.dispatched

    def test_cancel_then_reschedule_same_time(self):
        # The dead entry sorts ahead of its same-time replacement (lower
        # sequence), so peek/pop must skim it via _drop_dead_entries.
        q = EventQueue()
        doomed = q.schedule(1.0, "doomed")
        q.cancel(doomed)
        replacement = q.schedule(1.0, "replacement")
        assert len(q) == 1
        assert q.peek_time() == 1.0  # repro-lint: disable=RPR101 -- exact: the scheduled instant round-trips
        assert q.pop() is replacement
        assert len(q) == 0
        assert q.processed_count == 1

    def test_cancel_reschedule_cycle_preserves_counts(self):
        q = EventQueue()
        current = q.schedule(5.0, "job")
        for _ in range(3):
            q.cancel(current)
            current = q.schedule(5.0, "job")
        q.schedule(6.0, "late")
        assert len(q) == 2
        assert [e.kind for e in q.drain()] == ["job", "late"]
        assert q.processed_count == 2
