"""Seed determinism across every sweep execution path.

The paired-comparison methodology of the experiments (and the verify
tier's golden fixtures) rests on one property: the same
:class:`~repro.analysis.parallel.RunSpec` produces byte-identical
serialized results no matter *how* it is executed — serially in-process,
through the :func:`run_parallel` pool, or through the crash-tolerant
:func:`run_parallel_salvage` path.
"""

import pytest

from repro.analysis.parallel import (
    RunSpec,
    run_parallel,
    run_parallel_salvage,
)
from repro.experiments.common import PaperSetup
from repro.serialization import canonical_json, result_to_dict

_SETUP = PaperSetup(horizon=300.0)

_SPECS = tuple(
    RunSpec(
        scheduler_name=scheduler,
        utilization=0.4,
        capacity=120.0,
        seed=seed,
        setup=_SETUP,
    )
    for scheduler in ("ea-dvfs", "lsa")
    for seed in (0, 1)
)


def _fingerprints(results):
    return [canonical_json(result_to_dict(result)) for result in results]


class TestSeedDeterminism:
    def test_serial_path_is_repeatable(self):
        first = _fingerprints(run_parallel(_SPECS, max_workers=1))
        second = _fingerprints(run_parallel(_SPECS, max_workers=1))
        assert first == second

    @pytest.mark.slow
    def test_pool_matches_serial(self):
        serial = _fingerprints(run_parallel(_SPECS, max_workers=1))
        pooled = _fingerprints(run_parallel(_SPECS, max_workers=2))
        assert pooled == serial

    def test_salvage_serial_matches_plain(self):
        plain = _fingerprints(run_parallel(_SPECS, max_workers=1))
        salvaged = run_parallel_salvage(_SPECS, max_workers=1)
        assert all(hasattr(r, "scheduler_name") for r in salvaged)
        assert _fingerprints(salvaged) == plain

    @pytest.mark.slow
    def test_salvage_pool_matches_serial(self):
        serial = _fingerprints(run_parallel(_SPECS, max_workers=1))
        salvaged = run_parallel_salvage(_SPECS, max_workers=2, retries=1)
        assert _fingerprints(salvaged) == serial

    def test_distinct_seeds_differ(self):
        """Guards against a fingerprint that ignores the payload."""
        prints = _fingerprints(run_parallel(_SPECS, max_workers=1))
        assert len(set(prints)) == len(prints)

    def test_direct_setup_run_matches_runspec_path(self):
        spec = _SPECS[0]
        direct = _SETUP.run(
            scheduler_name=spec.scheduler_name,
            utilization=spec.utilization,
            capacity=spec.capacity,
            seed=spec.seed,
        )
        via_sweep = run_parallel([spec], slim=False)[0]
        assert canonical_json(result_to_dict(direct)) == canonical_json(
            result_to_dict(via_sweep)
        )
