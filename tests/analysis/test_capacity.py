"""Unit tests for the minimum-capacity search."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import find_min_capacity


def step_miss_fn(threshold):
    """Miss rate 0.5 below the threshold capacity, 0 at or above."""

    def miss(capacity):
        return 0.5 if capacity < threshold else 0.0

    return miss


class TestBasicSearch:
    def test_finds_step_threshold(self):
        result = find_min_capacity(step_miss_fn(137.0), initial=10.0)
        assert result.min_capacity == pytest.approx(137.0, rel=0.03)
        assert result.last_missing_capacity < result.min_capacity

    def test_threshold_below_initial_probes_down(self):
        result = find_min_capacity(step_miss_fn(3.0), initial=100.0)
        assert result.min_capacity == pytest.approx(3.0, rel=0.05)

    def test_always_zero_returns_tiny(self):
        result = find_min_capacity(lambda c: 0.0, initial=10.0)
        assert result.min_capacity <= 1e-3 * 2

    def test_never_zero_raises(self):
        with pytest.raises(RuntimeError, match="no zero-miss capacity"):
            find_min_capacity(lambda c: 0.9, initial=10.0, max_capacity=1e4)

    def test_gradual_decline(self):
        """Continuously decreasing miss rate, zero from 400 up."""

        def miss(capacity):
            return max(0.0, (400.0 - capacity) / 400.0)

        result = find_min_capacity(miss, initial=10.0, rel_tol=0.01)
        assert result.min_capacity == pytest.approx(400.0, rel=0.02)

    def test_zero_threshold_relaxation(self):
        """Rates below the threshold count as zero."""

        def miss(capacity):
            return 0.04 if capacity < 100.0 else 0.01  # repro-lint: disable=RPR101 -- fixture step threshold, exact by construction

        result = find_min_capacity(miss, initial=10.0, zero_threshold=0.02)
        assert result.min_capacity == pytest.approx(100.0, rel=0.03)

    def test_evaluation_count_reported(self):
        result = find_min_capacity(step_miss_fn(100.0), initial=10.0)
        assert result.evaluations >= 4

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="returned"):
            find_min_capacity(lambda c: 2.0, initial=10.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            find_min_capacity(lambda c: 0.0, initial=0.0)
        with pytest.raises(ValueError):
            find_min_capacity(lambda c: 0.0, initial=10.0, max_capacity=5.0)
        with pytest.raises(ValueError):
            find_min_capacity(lambda c: 0.0, rel_tol=0.0)
        with pytest.raises(ValueError):
            find_min_capacity(lambda c: 0.0, zero_threshold=-0.1)


class TestSearchProperties:
    @given(threshold=st.floats(min_value=0.5, max_value=50_000))
    @settings(max_examples=60, deadline=None)
    def test_threshold_recovered_within_tolerance(self, threshold):
        result = find_min_capacity(
            step_miss_fn(threshold), initial=10.0, max_capacity=1e6,
            rel_tol=0.02,
        )
        # The reported capacity achieves zero misses and is within
        # tolerance of the true threshold.
        assert step_miss_fn(threshold)(result.min_capacity) == 0.0
        assert result.min_capacity <= threshold * 1.03 + 1e-3

    @given(threshold=st.floats(min_value=1.0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_bracket_is_consistent(self, threshold):
        result = find_min_capacity(step_miss_fn(threshold), initial=5.0)
        if math.isfinite(result.last_missing_rate):
            assert result.last_missing_rate > 0.0  # repro-lint: disable=RPR101 -- strict positivity check, tolerance would hide tiny rates
            assert result.last_missing_capacity < result.min_capacity
