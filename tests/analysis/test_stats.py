"""Unit tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_ci,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_renders(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert low <= 2.0 <= high

    def test_zero_variance_is_degenerate(self):
        low, high = mean_confidence_interval([2.0, 2.0, 2.0])
        assert low == high == 2.0

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(size=10)
        large = rng.normal(size=1000)
        w_small = np.diff(mean_confidence_interval(small))[0]
        w_large = np.diff(mean_confidence_interval(large))[0]
        assert w_large < w_small

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)

    def test_coverage_roughly_nominal(self):
        """~95% of intervals over repeated normal samples cover 0."""
        rng = np.random.default_rng(7)
        covered = 0
        trials = 200
        for _ in range(trials):
            sample = rng.normal(size=20)
            low, high = mean_confidence_interval(sample, 0.95)
            covered += low <= 0.0 <= high
        assert covered / trials > 0.85

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_interval_ordered_and_centered(self, values):
        low, high = mean_confidence_interval(values)
        mean = float(np.mean(values))
        assert low <= mean <= high


class TestBootstrap:
    def test_deterministic_given_seed(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_contains_point_estimate(self):
        data = list(np.random.default_rng(1).normal(10, 1, size=50))
        low, high = bootstrap_ci(data, n_resamples=500)
        assert low <= np.mean(data) <= high

    def test_custom_statistic(self):
        data = [1.0, 2.0, 100.0]
        low, high = bootstrap_ci(data, statistic=np.median, n_resamples=200)
        assert low <= 100.0 and low >= 1.0
        assert high <= 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=0)
