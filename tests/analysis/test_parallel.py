"""Tests for the multi-process sweep driver."""

import pytest

from repro.analysis.parallel import RunSpec, parallel_miss_rates, run_parallel
from repro.experiments.common import PaperSetup
from repro.timeutils import time_eq

FAST_SETUP = PaperSetup(horizon=400.0)


class TestRunParallel:
    def test_empty(self):
        assert run_parallel([]) == []

    def test_single_spec_runs_inline(self):
        spec = RunSpec("edf", 0.4, 50.0, 0, setup=FAST_SETUP)
        (result,) = run_parallel([spec])
        assert result.scheduler_name == "edf"
        assert result.released_count > 0

    def test_order_preserved(self):
        specs = [
            RunSpec("edf", 0.4, 50.0, 0, setup=FAST_SETUP),
            RunSpec("lsa", 0.4, 50.0, 0, setup=FAST_SETUP),
            RunSpec("ea-dvfs", 0.4, 50.0, 0, setup=FAST_SETUP),
        ]
        results = run_parallel(specs, max_workers=2)
        assert [r.scheduler_name for r in results] == ["edf", "lsa", "ea-dvfs"]

    def test_matches_serial_execution(self):
        spec = RunSpec("lsa", 0.4, 60.0, 3, setup=FAST_SETUP)
        serial = run_parallel([spec], max_workers=1)[0]
        parallel = run_parallel([spec, spec], max_workers=2)[0]
        assert parallel.missed_count == serial.missed_count
        assert parallel.drawn_energy == pytest.approx(serial.drawn_energy)

    def test_slim_strips_jobs(self):
        spec = RunSpec("edf", 0.4, 50.0, 0, setup=FAST_SETUP)
        slim = run_parallel([spec], slim=True)[0]
        fat = run_parallel([spec], slim=False)[0]
        assert slim.jobs == ()
        assert len(fat.jobs) == fat.released_count
        # Counters survive slimming.
        assert slim.released_count == fat.released_count


class TestParallelCapacitySweep:
    def test_matches_serial_sweep(self):
        from repro.analysis.parallel import parallel_capacity_sweep
        from repro.analysis.sweep import run_capacity_sweep

        serial = run_capacity_sweep(
            FAST_SETUP.factory(0.4),
            scheduler_names=("lsa", "ea-dvfs"),
            capacities=(20.0, 80.0),
            seeds=range(2),
        )
        parallel = parallel_capacity_sweep(
            scheduler_names=("lsa", "ea-dvfs"),
            utilization=0.4,
            capacities=(20.0, 80.0),
            seeds=range(2),
            setup=FAST_SETUP,
            max_workers=2,
        )
        assert len(parallel) == len(serial)
        for p, s in zip(parallel, serial):
            assert time_eq(p.capacity, s.capacity)
            for name in ("lsa", "ea-dvfs"):
                assert p.miss_rate(name) == pytest.approx(s.miss_rate(name))


class TestWorkersEnv:
    def test_default_is_one(self, monkeypatch):
        from repro.experiments.common import workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers() == 1

    def test_parsing(self, monkeypatch):
        from repro.experiments.common import workers

        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError, match="integer"):
            workers()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            workers()


class TestParallelMissRates:
    def test_rates_per_scheduler(self):
        rates = parallel_miss_rates(
            scheduler_names=("lsa", "ea-dvfs"),
            utilization=0.4,
            capacity=30.0,
            seeds=range(2),
            setup=FAST_SETUP,
            max_workers=2,
        )
        assert set(rates) == {"lsa", "ea-dvfs"}
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_matches_serial_pooling(self):
        kwargs = dict(
            scheduler_names=("lsa",),
            utilization=0.4,
            capacity=30.0,
            seeds=range(2),
            setup=FAST_SETUP,
        )
        serial = parallel_miss_rates(max_workers=1, **kwargs)
        parallel = parallel_miss_rates(max_workers=2, **kwargs)
        assert parallel == serial
