"""Unit tests for offline schedulability / energy-feasibility analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.schedulability import (
    demand_bound,
    edf_schedulable,
    energy_feasibility,
    full_speed_energy_demand_rate,
    max_energy_deficit,
    min_energy_demand_rate,
)
from repro.cpu.presets import xscale_pxa
from repro.energy.source import ConstantSource, DayNightSource
from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet
from repro.tasks.workload import generate_uunifast_taskset


class TestDemandBound:
    def test_zero_window(self):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=2.0)])
        assert demand_bound(ts, 0.0) == 0.0

    def test_single_task_steps(self):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=2.0)])
        assert demand_bound(ts, 9.99) == 0.0
        assert demand_bound(ts, 10.0) == 2.0
        assert demand_bound(ts, 19.99) == 2.0
        assert demand_bound(ts, 20.0) == 4.0

    def test_constrained_deadline(self):
        ts = TaskSet(
            [PeriodicTask(period=10.0, wcet=2.0, relative_deadline=5.0)]
        )
        assert demand_bound(ts, 5.0) == 2.0
        assert demand_bound(ts, 14.99) == 2.0
        assert demand_bound(ts, 15.0) == 4.0

    def test_additive_over_tasks(self):
        a = TaskSet([PeriodicTask(period=10.0, wcet=2.0, name="a")])
        b = TaskSet([PeriodicTask(period=15.0, wcet=3.0, name="b")])
        both = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, name="a"),
                PeriodicTask(period=15.0, wcet=3.0, name="b"),
            ]
        )
        for t in (0.0, 10.0, 15.0, 30.0, 100.0):
            assert demand_bound(both, t) == pytest.approx(
                demand_bound(a, t) + demand_bound(b, t)
            )

    def test_negative_window_rejected(self):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=2.0)])
        with pytest.raises(ValueError):
            demand_bound(ts, -1.0)

    def test_aperiodic_rejected(self):
        ts = TaskSet([AperiodicTask(arrival=0.0, relative_deadline=5.0, wcet=1.0)])
        with pytest.raises(ValueError, match="all-periodic"):
            demand_bound(ts, 10.0)


class TestEdfSchedulable:
    def test_implicit_deadlines_utilization_bound(self):
        ok = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=5.0, name="a"),
                PeriodicTask(period=20.0, wcet=10.0, name="b"),
            ]
        )
        assert ok.utilization == pytest.approx(1.0)
        assert edf_schedulable(ok)

    def test_overutilized_fails(self):
        # Individually feasible (w <= p) but jointly over-utilized.
        bad = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=6.0, name="a"),
                PeriodicTask(period=10.0, wcet=6.0, name="b"),
            ]
        )
        assert not edf_schedulable(bad)

    def test_constrained_deadlines_feasible(self):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=2.0, relative_deadline=5.0,
                             name="a"),
                PeriodicTask(period=20.0, wcet=4.0, relative_deadline=10.0,
                             name="b"),
            ]
        )
        assert edf_schedulable(ts)

    def test_constrained_deadlines_infeasible(self):
        # U = 0.9 < 1 but both demands concentrate in tight windows:
        # dbf(4) = 3 + 3 = 6 > 4.
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=3.0, relative_deadline=4.0,
                             name="a"),
                PeriodicTask(period=5.0, wcet=3.0, relative_deadline=4.0,
                             name="b"),
            ]
        )
        assert not edf_schedulable(ts)

    def test_arbitrary_deadlines_rejected(self):
        ts = TaskSet(
            [PeriodicTask(period=10.0, wcet=2.0, relative_deadline=15.0)]
        )
        with pytest.raises(ValueError, match="not supported"):
            edf_schedulable(ts)

    @given(
        n=st.integers(min_value=1, max_value=8),
        u=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_implicit_deadline_sets_always_schedulable(self, n, u, seed):
        """Any U <= 1 implicit-deadline set passes (Liu & Layland)."""
        ts = generate_uunifast_taskset(n_tasks=n, utilization=u, seed=seed)
        assert edf_schedulable(ts)


class TestEnergyDemandRates:
    def test_full_speed_rate(self, xscale):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])
        assert full_speed_energy_demand_rate(ts, xscale) == pytest.approx(
            0.4 * 3.2
        )

    def test_min_rate_uses_slowest_feasible_level(self, xscale):
        # w=4, d=10: slowest feasible level is S=0.4 (4/0.4 = 10 <= 10),
        # energy-per-work = 0.4/0.4 = 1.0 -> rate = 0.4 * 1.0.
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])
        assert min_energy_demand_rate(ts, xscale) == pytest.approx(0.4)

    def test_min_rate_below_full_speed(self, xscale):
        ts = TaskSet(
            [
                PeriodicTask(period=10.0, wcet=1.0, name="a"),
                PeriodicTask(period=50.0, wcet=10.0, name="b"),
            ]
        )
        assert min_energy_demand_rate(ts, xscale) < (
            full_speed_energy_demand_rate(ts, xscale)
        )

    def test_min_rate_full_speed_only_task(self, xscale):
        """A task with zero stretching room is charged at P_max."""
        ts = TaskSet(
            [PeriodicTask(period=10.0, wcet=4.0, relative_deadline=4.0)]
        )
        assert min_energy_demand_rate(ts, xscale) == pytest.approx(0.4 * 3.2)


class TestEnergyFeasibility:
    def test_abundant_source(self, xscale):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])
        fx = energy_feasibility(ts, ConstantSource(10.0), xscale)
        assert fx.feasible_at_full_speed
        assert fx.feasible_with_dvfs
        assert fx.headroom == pytest.approx(10.0 - 1.28)

    def test_dvfs_only_regime(self, xscale):
        """Source covers the stretched demand but not full speed."""
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])
        fx = energy_feasibility(ts, ConstantSource(0.8), xscale)
        assert not fx.feasible_at_full_speed
        assert fx.feasible_with_dvfs

    def test_hopeless_regime(self, xscale):
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])
        fx = energy_feasibility(ts, ConstantSource(0.1), xscale)
        assert not fx.feasible_at_full_speed
        assert not fx.feasible_with_dvfs


class TestMaxEnergyDeficit:
    def test_constant_surplus_has_no_deficit(self):
        assert max_energy_deficit(ConstantSource(5.0), 2.0, 100.0) == 0.0

    def test_constant_shortfall_grows_linearly(self):
        deficit = max_energy_deficit(ConstantSource(1.0), 2.0, 100.0)
        assert deficit == pytest.approx(100.0)

    def test_day_night_deficit_is_one_night(self):
        source = DayNightSource(day_power=4.0, night_power=0.0,
                                day_length=50.0, night_length=50.0)
        # demand 1.0: deficit accumulates 1.0/unit for 50 night units.
        deficit = max_energy_deficit(source, 1.0, 300.0)
        assert deficit == pytest.approx(50.0, rel=0.05)

    def test_deficit_bounds_simulated_capacity(self, xscale):
        """A storage below the deficit cannot avoid stalls in simulation."""
        from repro.energy.predictor import OraclePredictor
        from repro.energy.storage import IdealStorage
        from repro.sched.edf import GreedyEdfScheduler
        from repro.sim.simulator import (
            HarvestingRtSimulator,
            SimulationConfig,
        )

        source = DayNightSource(day_power=4.0, night_power=0.0,
                                day_length=50.0, night_length=50.0)
        ts = TaskSet([PeriodicTask(period=10.0, wcet=4.0)])  # draws 1.28
        deficit = max_energy_deficit(source, 1.28, 400.0)
        sim = HarvestingRtSimulator(
            taskset=ts,
            source=source,
            storage=IdealStorage(capacity=deficit / 2),
            scheduler=GreedyEdfScheduler(xscale),
            predictor=OraclePredictor(source),
            config=SimulationConfig(horizon=400.0),
        )
        assert sim.run().stall_count > 0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            max_energy_deficit(ConstantSource(1.0), -1.0, 10.0)
        with pytest.raises(ValueError):
            max_energy_deficit(ConstantSource(1.0), 1.0, 0.0)
        with pytest.raises(ValueError):
            max_energy_deficit(ConstantSource(1.0), 1.0, 10.0, quantum=0.0)
