"""Unit tests for metric aggregation and the sweep drivers."""

import pytest

from repro.analysis.metrics import (
    aggregate_results,
    energy_series,
    miss_rate_by_task,
)
from repro.analysis.sweep import run_capacity_sweep, run_replications
from repro.cpu.presets import xscale_pxa
from repro.energy.source import ConstantSource, SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.sched.edf import GreedyEdfScheduler
from repro.sched.registry import make_scheduler
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.sim.tracing import TraceKind
from repro.tasks.task import PeriodicTask, TaskSet
from repro.timeutils import time_eq


def tiny_factory(scheduler_name, capacity, seed):
    """A fast real-simulation factory for driver tests."""
    scale = xscale_pxa()
    source = SolarStochasticSource(seed=seed)
    taskset = TaskSet([PeriodicTask(period=10.0, wcet=3.0, name="t")])
    sim = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=IdealStorage(capacity=capacity),
        scheduler=make_scheduler(scheduler_name, scale),
        config=SimulationConfig(horizon=300.0),
    )
    return sim.run()


class TestAggregateResults:
    def test_pooled_vs_mean_miss_rate(self):
        results = [tiny_factory("edf", 5.0, s) for s in range(3)]
        agg = aggregate_results(results)
        assert agg.n_runs == 3
        total_missed = sum(r.missed_count for r in results)
        total_judged = sum(r.judged_count for r in results)
        assert agg.pooled_miss_rate == pytest.approx(total_missed / total_judged)
        assert 0.0 <= agg.miss_rate.mean <= 1.0

    def test_mixed_schedulers_rejected(self):
        results = [tiny_factory("edf", 5.0, 0), tiny_factory("lsa", 5.0, 0)]
        with pytest.raises(ValueError, match="mixed schedulers"):
            aggregate_results(results)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_str_renders(self):
        agg = aggregate_results([tiny_factory("edf", 5.0, 0)])
        assert "edf" in str(agg)


class TestEnergySeries:
    def test_extracts_traced_series(self):
        scale = xscale_pxa()
        sim = HarvestingRtSimulator(
            taskset=TaskSet([PeriodicTask(period=10.0, wcet=1.0, name="t")]),
            source=ConstantSource(1.0),
            storage=IdealStorage(capacity=50.0),
            scheduler=GreedyEdfScheduler(scale),
            config=SimulationConfig(
                horizon=100.0,
                trace_kinds=(TraceKind.ENERGY,),
                energy_sample_interval=10.0,
            ),
        )
        times, fractions = energy_series(sim.run())
        assert times.size >= 10
        assert ((fractions >= 0) & (fractions <= 1)).all()

    def test_untraced_run_raises(self):
        result = tiny_factory("edf", 50.0, 0)
        with pytest.raises(ValueError, match="no energy trace"):
            energy_series(result)


class TestMissRateByTask:
    def test_rates_per_task(self):
        result = tiny_factory("edf", 5.0, 1)
        rates = miss_rate_by_task(result)
        assert set(rates) == {"t"}
        assert 0.0 <= rates["t"] <= 1.0


class TestReplicationDriver:
    def test_runs_all_seeds(self):
        rep = run_replications(tiny_factory, "edf", 20.0, seeds=[0, 1, 2])
        assert len(rep.results) == 3
        assert rep.scheduler_name == "edf"
        assert time_eq(rep.capacity, 20.0)

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_replications(tiny_factory, "edf", 20.0, seeds=[])


class TestCapacitySweepDriver:
    def test_sweep_structure(self):
        points = run_capacity_sweep(
            tiny_factory,
            scheduler_names=("edf", "lsa"),
            capacities=(5.0, 50.0),
            seeds=(0, 1),
        )
        assert len(points) == 2
        assert set(points[0].by_scheduler) == {"edf", "lsa"}
        assert time_eq(points[0].capacity, 5.0)

    def test_miss_rate_accessor(self):
        points = run_capacity_sweep(
            tiny_factory, ("edf",), (5.0,), seeds=(0,),
        )
        assert 0.0 <= points[0].miss_rate("edf") <= 1.0

    def test_larger_capacity_helps(self):
        """Sanity: a much bigger storage cannot miss more (pooled)."""
        points = run_capacity_sweep(
            tiny_factory, ("edf",), (2.0, 500.0), seeds=(0, 1, 2),
        )
        assert points[1].miss_rate("edf") <= points[0].miss_rate("edf")

    def test_empty_schedulers_rejected(self):
        with pytest.raises(ValueError):
            run_capacity_sweep(tiny_factory, (), (5.0,), seeds=(0,))
