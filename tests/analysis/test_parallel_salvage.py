"""Failure-path tests for the crash-tolerant sweep runner."""

import time
from dataclasses import dataclass

import pytest

from repro.analysis.parallel import (
    RunFailure,
    RunSpec,
    _retry_order,
    retry_delay,
    run_parallel_salvage,
)
from repro.experiments.common import PaperSetup
from repro.sim.simulator import SimulationResult
from repro.sim.watchdog import SimulationDiagnostics, WatchdogError

FAST_SETUP = PaperSetup(horizon=200.0)


@dataclass(frozen=True)
class RaisingSetup(PaperSetup):
    """Setup whose every run crashes (top-level class: pool-picklable)."""

    def run(self, *args, **kwargs):
        raise RuntimeError("injected worker crash")


@dataclass(frozen=True)
class WatchdogTrippingSetup(PaperSetup):
    """Setup whose every run aborts with a structured watchdog report."""

    def run(self, *args, **kwargs):
        raise WatchdogError(
            SimulationDiagnostics(
                violation="stall budget exhausted",
                time=12.5,
                segments_checked=42,
                stall_count=7,
                consecutive_stalls=7,
                completed_count=3,
                stored=0.0,
                capacity=50.0,
                detail={"budget": 5.0},
            )
        )


@dataclass(frozen=True)
class SleepingSetup(PaperSetup):
    """Setup whose every run hangs far past any reasonable timeout."""

    def run(self, *args, **kwargs):
        time.sleep(5.0)
        raise AssertionError("should have been abandoned by the timeout")


def ok_spec(seed=0):
    return RunSpec("edf", 0.4, 50.0, seed, setup=FAST_SETUP)


def bad_spec():
    return RunSpec("edf", 0.4, 50.0, 0, setup=RaisingSetup())


class TestSerialSalvage:
    def test_empty(self):
        assert run_parallel_salvage([]) == []

    def test_all_healthy_matches_plain_results(self):
        results = run_parallel_salvage([ok_spec(0), ok_spec(1)], max_workers=1)
        assert all(isinstance(r, SimulationResult) for r in results)

    def test_raising_cell_salvaged_others_complete(self):
        specs = [ok_spec(0), bad_spec(), ok_spec(1)]
        results = run_parallel_salvage(specs, max_workers=1)
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[2], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "RuntimeError"
        assert "injected worker crash" in failure.message
        assert failure.attempts == 1
        assert failure.timed_out is False
        assert failure.spec == specs[1]

    def test_order_preserved(self):
        specs = [
            RunSpec(name, 0.4, 50.0, 0, setup=FAST_SETUP)
            for name in ("edf", "lsa", "ea-dvfs")
        ]
        results = run_parallel_salvage(specs, max_workers=1)
        assert [r.scheduler_name for r in results] == ["edf", "lsa", "ea-dvfs"]

    def test_retries_counted(self):
        results = run_parallel_salvage(
            [bad_spec(), ok_spec()], max_workers=1, retries=2, backoff=0.0
        )
        assert results[0].attempts == 3
        assert isinstance(results[1], SimulationResult)

    def test_successful_cells_not_retried(self):
        # A healthy cell succeeds in round 0 and must not run again.
        results = run_parallel_salvage(
            [ok_spec()] * 2 + [bad_spec()], max_workers=1, retries=1, backoff=0.0
        )
        assert isinstance(results[0], SimulationResult)
        assert results[2].attempts == 2


class TestPooledSalvage:
    def test_raising_cell_salvaged_others_complete(self):
        specs = [ok_spec(0), bad_spec(), ok_spec(1)]
        results = run_parallel_salvage(specs, max_workers=2, retries=1, backoff=0.0)
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[2], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2

    def test_hanging_cell_times_out(self):
        specs = [
            ok_spec(0),
            RunSpec("edf", 0.4, 50.0, 0, setup=SleepingSetup()),
        ]
        results = run_parallel_salvage(specs, max_workers=2, timeout=0.5)
        assert isinstance(results[0], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.timed_out is True
        assert failure.error_type == "TimeoutError"
        assert "0.5" in failure.message

    def test_pooled_matches_serial_for_healthy_specs(self):
        specs = [ok_spec(0), ok_spec(1)]
        serial = run_parallel_salvage(specs, max_workers=1)
        pooled = run_parallel_salvage(specs, max_workers=2)
        for s, p in zip(serial, pooled):
            assert s.missed_count == p.missed_count
            assert s.drawn_energy == pytest.approx(p.drawn_energy)


class TestDiagnosticsCapture:
    def test_serial_failure_carries_traceback(self):
        failure = run_parallel_salvage([bad_spec()], max_workers=1)[0]
        assert isinstance(failure, RunFailure)
        assert "Traceback (most recent call last)" in failure.traceback
        assert "injected worker crash" in failure.traceback
        assert "RaisingSetup" in failure.traceback or "run" in failure.traceback

    def test_pooled_failure_carries_worker_traceback(self):
        # The traceback is formatted worker-side: it must survive the
        # process boundary intact.
        failure = run_parallel_salvage([bad_spec()] * 2, max_workers=2)[0]
        assert isinstance(failure, RunFailure)
        assert "Traceback (most recent call last)" in failure.traceback
        assert "injected worker crash" in failure.traceback

    def test_watchdog_diagnostics_captured(self):
        spec = RunSpec("edf", 0.4, 50.0, 0, setup=WatchdogTrippingSetup())
        failure = run_parallel_salvage([spec], max_workers=1)[0]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "WatchdogError"
        assert failure.diagnostics is not None
        assert failure.diagnostics["violation"] == "stall budget exhausted"
        assert failure.diagnostics["stall_count"] == 7
        assert failure.diagnostics["detail"] == {"budget": 5.0}

    def test_timeout_failure_has_no_traceback(self):
        specs = [RunSpec("edf", 0.4, 50.0, 0, setup=SleepingSetup())] * 2
        failure = run_parallel_salvage(specs, max_workers=2, timeout=0.5)[0]
        assert failure.timed_out is True
        assert failure.traceback is None
        assert failure.diagnostics is None


class TestDeterministicRetrySchedule:
    def test_retry_delay_doubles_per_round(self):
        assert retry_delay(0.5, 1) == 0.5
        assert retry_delay(0.5, 2) == 1.0
        assert retry_delay(0.5, 3) == 2.0

    def test_retry_delay_zero_backoff(self):
        assert retry_delay(0.0, 1, jitter=0.5, seed=3) == 0.0

    def test_jitter_is_seeded_and_bounded(self):
        delays = {retry_delay(1.0, 1, jitter=0.25, seed=7) for _ in range(5)}
        assert len(delays) == 1  # pure function of (round, seed)
        delay = delays.pop()
        assert 1.0 <= delay <= 1.25
        assert retry_delay(1.0, 1, jitter=0.25, seed=8) != delay

    def test_retry_order_is_seeded_permutation(self):
        pending = list(range(10))
        order = _retry_order(pending, round_no=1, seed=0)
        assert sorted(order) == pending
        assert order == _retry_order(pending, round_no=1, seed=0)
        assert order != _retry_order(pending, round_no=2, seed=0)
        assert order != _retry_order(pending, round_no=1, seed=1)

    def test_salvage_outcome_reproducible_under_fixed_seed(self):
        specs = [bad_spec(), ok_spec(0), bad_spec(), ok_spec(1)]
        kwargs = dict(max_workers=1, retries=2, backoff=0.0, jitter=0.5, seed=9)
        first = run_parallel_salvage(specs, **kwargs)
        second = run_parallel_salvage(specs, **kwargs)
        for a, b in zip(first, second):
            assert type(a) is type(b)
            if isinstance(a, RunFailure):
                assert a.attempts == b.attempts
                assert a.message == b.message


@pytest.mark.slow
class TestWorkerDeath:
    """Genuinely hostile workers: hangs and signal deaths (pooled only)."""

    def _flaky(self, tmp_path, mode, fail_attempts=1):
        from repro.faults.chaos import FlakySetup

        return FlakySetup(
            horizon=200.0,
            scratch_dir=str(tmp_path / "scratch"),
            fail_attempts=fail_attempts,
            mode=mode,
            stall_seconds=10.0,
        )

    def test_sigkilled_worker_salvaged(self, tmp_path):
        # The worker dies by SIGKILL: the pool breaks, and the cell is
        # salvaged as a BrokenProcessPool failure instead of aborting.
        # A healthy companion spec keeps the sweep on the pooled path —
        # single-spec sweeps run serially, where a kill-mode FlakySetup
        # would take down the test process itself.
        setup = self._flaky(tmp_path, "kill", fail_attempts=10)
        specs = [
            RunSpec("edf", 0.4, 50.0, 0, setup=setup),
            RunSpec("edf", 0.4, 50.0, 1, setup=FAST_SETUP),
        ]
        results = run_parallel_salvage(specs, max_workers=2, retries=0)
        failure = results[0]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "BrokenProcessPool"
        assert failure.attempts == 1
        assert failure.timed_out is False

    def test_sigkilled_worker_heals_on_retry(self, tmp_path):
        # First attempt dies by signal; the retry round gets a fresh
        # pool and the (now healthy) cell completes.
        setup = self._flaky(tmp_path, "kill", fail_attempts=1)
        specs = [
            RunSpec("edf", 0.4, 50.0, 0, setup=setup),
            RunSpec("edf", 0.4, 50.0, 1, setup=FAST_SETUP),
        ]
        results = run_parallel_salvage(
            specs, max_workers=2, retries=1, backoff=0.0, seed=0
        )
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[1], SimulationResult)

    def test_stalling_worker_times_out_then_heals(self, tmp_path):
        setup = self._flaky(tmp_path, "stall", fail_attempts=1)
        specs = [RunSpec("edf", 0.4, 50.0, 0, setup=setup)]
        results = run_parallel_salvage(
            specs + [RunSpec("edf", 0.4, 50.0, 1, setup=FAST_SETUP)],
            max_workers=2,
            timeout=1.0,
            retries=1,
            backoff=0.0,
            seed=0,
        )
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[1], SimulationResult)


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            run_parallel_salvage([ok_spec()], timeout=0.0)

    def test_bad_retries(self):
        with pytest.raises(ValueError, match="retries"):
            run_parallel_salvage([ok_spec()], retries=-1)

    def test_bad_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            run_parallel_salvage([ok_spec()], backoff=-0.5)
