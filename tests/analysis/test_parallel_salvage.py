"""Failure-path tests for the crash-tolerant sweep runner."""

import time
from dataclasses import dataclass

import pytest

from repro.analysis.parallel import RunFailure, RunSpec, run_parallel_salvage
from repro.experiments.common import PaperSetup
from repro.sim.simulator import SimulationResult

FAST_SETUP = PaperSetup(horizon=200.0)


@dataclass(frozen=True)
class RaisingSetup(PaperSetup):
    """Setup whose every run crashes (top-level class: pool-picklable)."""

    def run(self, *args, **kwargs):
        raise RuntimeError("injected worker crash")


@dataclass(frozen=True)
class SleepingSetup(PaperSetup):
    """Setup whose every run hangs far past any reasonable timeout."""

    def run(self, *args, **kwargs):
        time.sleep(5.0)
        raise AssertionError("should have been abandoned by the timeout")


def ok_spec(seed=0):
    return RunSpec("edf", 0.4, 50.0, seed, setup=FAST_SETUP)


def bad_spec():
    return RunSpec("edf", 0.4, 50.0, 0, setup=RaisingSetup())


class TestSerialSalvage:
    def test_empty(self):
        assert run_parallel_salvage([]) == []

    def test_all_healthy_matches_plain_results(self):
        results = run_parallel_salvage([ok_spec(0), ok_spec(1)], max_workers=1)
        assert all(isinstance(r, SimulationResult) for r in results)

    def test_raising_cell_salvaged_others_complete(self):
        specs = [ok_spec(0), bad_spec(), ok_spec(1)]
        results = run_parallel_salvage(specs, max_workers=1)
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[2], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "RuntimeError"
        assert "injected worker crash" in failure.message
        assert failure.attempts == 1
        assert failure.timed_out is False
        assert failure.spec == specs[1]

    def test_order_preserved(self):
        specs = [
            RunSpec(name, 0.4, 50.0, 0, setup=FAST_SETUP)
            for name in ("edf", "lsa", "ea-dvfs")
        ]
        results = run_parallel_salvage(specs, max_workers=1)
        assert [r.scheduler_name for r in results] == ["edf", "lsa", "ea-dvfs"]

    def test_retries_counted(self):
        results = run_parallel_salvage(
            [bad_spec(), ok_spec()], max_workers=1, retries=2, backoff=0.0
        )
        assert results[0].attempts == 3
        assert isinstance(results[1], SimulationResult)

    def test_successful_cells_not_retried(self):
        # A healthy cell succeeds in round 0 and must not run again.
        results = run_parallel_salvage(
            [ok_spec()] * 2 + [bad_spec()], max_workers=1, retries=1, backoff=0.0
        )
        assert isinstance(results[0], SimulationResult)
        assert results[2].attempts == 2


class TestPooledSalvage:
    def test_raising_cell_salvaged_others_complete(self):
        specs = [ok_spec(0), bad_spec(), ok_spec(1)]
        results = run_parallel_salvage(specs, max_workers=2, retries=1, backoff=0.0)
        assert isinstance(results[0], SimulationResult)
        assert isinstance(results[2], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2

    def test_hanging_cell_times_out(self):
        specs = [
            ok_spec(0),
            RunSpec("edf", 0.4, 50.0, 0, setup=SleepingSetup()),
        ]
        results = run_parallel_salvage(specs, max_workers=2, timeout=0.5)
        assert isinstance(results[0], SimulationResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.timed_out is True
        assert failure.error_type == "TimeoutError"
        assert "0.5" in failure.message

    def test_pooled_matches_serial_for_healthy_specs(self):
        specs = [ok_spec(0), ok_spec(1)]
        serial = run_parallel_salvage(specs, max_workers=1)
        pooled = run_parallel_salvage(specs, max_workers=2)
        for s, p in zip(serial, pooled):
            assert s.missed_count == p.missed_count
            assert s.drawn_energy == pytest.approx(p.drawn_energy)


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            run_parallel_salvage([ok_spec()], timeout=0.0)

    def test_bad_retries(self):
        with pytest.raises(ValueError, match="retries"):
            run_parallel_salvage([ok_spec()], retries=-1)

    def test_bad_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            run_parallel_salvage([ok_spec()], backoff=-0.5)
