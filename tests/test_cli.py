"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_quick_defaults(self):
        args = build_parser().parse_args(["quick"])
        assert args.scheduler == "ea-dvfs"
        assert args.utilization == 0.4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "ea-dvfs" in out
        assert "lsa" in out

    def test_quick(self, capsys):
        code = main(
            [
                "quick", "--scheduler", "lsa", "--capacity", "100",
                "--horizon", "500", "--predictor", "oracle",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler=lsa" in out
        assert "miss_rate" in out

    def test_run_motivation(self, capsys):
        assert main(["run", "motivation"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "completed in" in out

    def test_run_fig5(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_quick_with_exports_and_gantt(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "trace.csv"
        code = main(
            [
                "quick", "--scheduler", "ea-dvfs", "--capacity", "100",
                "--horizon", "300", "--json", str(json_path),
                "--trace-csv", str(csv_path), "--gantt",
                "--gantt-until", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full speed" in out  # gantt legend
        assert json_path.exists()
        assert csv_path.exists()
        import json

        payload = json.loads(json_path.read_text())
        assert payload["scheduler"] == "ea-dvfs"

    def test_feasibility(self, capsys):
        assert main(
            ["feasibility", "--utilization", "0.4", "--deficit-horizon",
             "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "EDF schedulable (timing): True" in out
        assert "sustainable at full speed: True" in out
        assert "storage lower bound" in out


class TestVerifyCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.n == 100
        assert args.seed == 0
        assert not args.no_faults

    @pytest.mark.differential
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["verify", "--n", "5", "--seed", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "no discrepancies found" in out
        assert "5 scenarios" in out

    @pytest.mark.differential
    def test_no_faults_sweep(self, capsys):
        assert main(
            ["verify", "--n", "3", "--seed", "7", "--no-faults", "--quiet"]
        ) == 0
        assert "no discrepancies" in capsys.readouterr().out

    def test_rejects_nonpositive_n(self, capsys):
        assert main(["verify", "--n", "0", "--quiet"]) == 2
        assert "--n must be >= 1" in capsys.readouterr().err

class TestLintCommand:
    """Exit-code contract mirrors `repro verify`: 0 clean, 1 findings,
    2 internal errors."""

    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src", "benchmarks", "examples", "tests"]
        assert args.output_format == "text"
        assert args.baseline is None
        assert not args.update_baseline
        assert not args.fix

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "1 finding(s)" in out

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "missing.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, capsys, tmp_path):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main(["lint", "--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"] == {"RPR001": 1}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR301" in out

    def test_suppression_respected_end_to_end(self, capsys, tmp_path):
        quiet = tmp_path / "quiet.py"
        quiet.write_text("import random  # repro-lint: disable=RPR001\n")
        assert main(["lint", str(quiet)]) == 0

    def test_self_hosted_run_is_clean(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        code = main(
            ["lint", str(root / "src"), str(root / "benchmarks")]
        )
        assert code == 0, capsys.readouterr().out


class TestVerifyDiscrepancies:
    def test_discrepancies_exit_nonzero(self, capsys, monkeypatch):
        from repro.verify import DifferentialReport, Discrepancy
        import repro.verify

        def fake_sweep(n, seed, allow_faults, progress):
            report = DifferentialReport(n_scenarios=n, base_seed=seed)
            report.discrepancies.append(
                Discrepancy(seed=seed, check="oracle", detail="boom",
                            scenario="synthetic")
            )
            return report

        monkeypatch.setattr(repro.verify, "run_differential", fake_sweep)
        assert main(["verify", "--n", "1", "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "DISCREPANCIES" in out
        assert "boom" in out


class TestSweepAndJournalCommands:
    SWEEP = [
        "sweep", "--scheduler", "edf", "--capacities", "50",
        "--seeds", "2", "--horizon", "200", "--workers", "1",
    ]

    def test_sweep_without_journal(self, capsys):
        assert main(self.SWEEP) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "2 ok" in out

    def test_sweep_journal_resume_and_export(self, capsys, tmp_path):
        journal = tmp_path / "sweep.journal"
        export = tmp_path / "results.json"
        args = self.SWEEP + ["--journal", str(journal)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 hit(s), 2 executed" in first
        assert main(args + ["--export", str(export)]) == 0
        second = capsys.readouterr().out
        assert "2 hit(s), 0 executed" in second
        assert export.exists()
        import json

        data = json.loads(export.read_text())
        assert len(data) == 2
        assert all(record["kind"] == "result" for record in data.values())

    def test_sweep_env_journal(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL", str(tmp_path / "env.journal"))
        assert main(self.SWEEP) == 0
        capsys.readouterr()
        assert main(self.SWEEP) == 0
        assert "2 hit(s), 0 executed" in capsys.readouterr().out

    def test_bad_capacities_exit_2(self, capsys):
        assert main(["sweep", "--capacities", "fifty"]) == 2

    def test_chaos_requires_journal(self, capsys):
        assert main(self.SWEEP + ["--chaos-kill-record", "1"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_journal_inspect_and_keys(self, capsys, tmp_path):
        journal = tmp_path / "sweep.journal"
        assert main(self.SWEEP + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["journal", "inspect", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "records: 2" in out
        assert main(["journal", "inspect", str(journal), "--keys"]) == 0
        out = capsys.readouterr().out
        assert "[result ]" in out
        assert "edf e1" in out

    def test_journal_export_stdout(self, capsys, tmp_path):
        journal = tmp_path / "sweep.journal"
        assert main(self.SWEEP + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["journal", "export", str(journal)]) == 0
        out = capsys.readouterr().out
        import json

        assert len(json.loads(out)) == 2

    def test_journal_inspect_missing_exit_2(self, capsys, tmp_path):
        assert main(["journal", "inspect", str(tmp_path / "nope.journal")]) == 2
