"""Shared fixtures for the test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cpu.presets import (
    motivational_example_scale,
    stretch_example_scale,
    xscale_pxa,
)
from repro.energy.source import ConstantSource, SolarStochasticSource
from repro.energy.storage import IdealStorage


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden fixtures under tests/golden/ instead of "
        "comparing against them",
    )


@pytest.fixture
def golden_store(request):
    """The golden-trace store rooted at tests/golden/.

    Honors ``--update-golden``: with the flag, checks rewrite fixtures
    instead of comparing.
    """
    from repro.verify.golden import GoldenStore

    return GoldenStore(
        Path(__file__).parent / "golden",
        update=request.config.getoption("--update-golden"),
    )


@pytest.fixture
def xscale():
    """The paper's five-speed XScale scale (P_max = 3.2)."""
    return xscale_pxa()


@pytest.fixture
def two_speed():
    """The section 2 motivational two-speed scale (P_max = 8)."""
    return motivational_example_scale()


@pytest.fixture
def quarter_speed():
    """The section 4.3 two-speed scale (S in {0.25, 1}, P in {1, 8})."""
    return stretch_example_scale()


@pytest.fixture
def constant_source():
    """The motivational example's constant 0.5-power source."""
    return ConstantSource(0.5)


@pytest.fixture
def solar_source():
    """A seeded realization of the paper's eq. (13) source."""
    return SolarStochasticSource(seed=42)


@pytest.fixture
def small_storage():
    """A small ideal storage starting full."""
    return IdealStorage(capacity=100.0)
