"""Unit tests for the DVFS frequency/power model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale, SwitchingOverhead


class TestFrequencyLevel:
    def test_valid_level(self):
        level = FrequencyLevel(speed=0.5, power=2.0, frequency_hz=500e6)
        assert level.energy_per_work == pytest.approx(4.0)

    def test_execution_time_scales_inversely(self):
        level = FrequencyLevel(speed=0.25, power=1.0)
        assert level.execution_time(4.0) == pytest.approx(16.0)

    def test_full_speed_execution_time(self):
        level = FrequencyLevel(speed=1.0, power=8.0)
        assert level.execution_time(4.0) == pytest.approx(4.0)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLevel(speed=0.0, power=1.0)
        with pytest.raises(ValueError):
            FrequencyLevel(speed=1.5, power=1.0)

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLevel(speed=0.5, power=0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLevel(speed=0.5, power=1.0).execution_time(-1.0)

    def test_ordering_by_speed(self):
        slow = FrequencyLevel(speed=0.25, power=1.0)
        fast = FrequencyLevel(speed=1.0, power=8.0)
        assert slow < fast


class TestFrequencyScaleConstruction:
    def test_levels_sorted_by_speed(self):
        scale = FrequencyScale(
            [
                FrequencyLevel(speed=1.0, power=8.0),
                FrequencyLevel(speed=0.25, power=1.0),
            ]
        )
        assert [lv.speed for lv in scale] == [0.25, 1.0]

    def test_fastest_must_be_speed_one(self):
        with pytest.raises(ValueError, match="speed 1.0"):
            FrequencyScale([FrequencyLevel(speed=0.5, power=1.0)])

    def test_duplicate_speeds_rejected(self):
        with pytest.raises(ValueError, match="non-increasing"):
            FrequencyScale(
                [
                    FrequencyLevel(speed=1.0, power=8.0),
                    FrequencyLevel(speed=1.0, power=4.0),
                ]
            )

    def test_power_must_increase_with_speed(self):
        with pytest.raises(ValueError, match="power must increase"):
            FrequencyScale(
                [
                    FrequencyLevel(speed=0.5, power=8.0),
                    FrequencyLevel(speed=1.0, power=2.0),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FrequencyScale([])

    def test_from_frequencies_normalizes(self):
        scale = FrequencyScale.from_frequencies([150e6, 1000e6], [0.08, 3.2])
        assert scale.min_level.speed == pytest.approx(0.15)
        assert scale.max_level.speed == 1.0

    def test_from_frequencies_length_mismatch(self):
        with pytest.raises(ValueError, match="frequencies but"):
            FrequencyScale.from_frequencies([1.0, 2.0], [1.0])

    def test_single_speed(self):
        scale = FrequencyScale.single_speed(power=5.0)
        assert len(scale) == 1
        assert scale.max_power == 5.0

    def test_dominated_level_warns(self):
        with pytest.warns(UserWarning, match="dominated"):
            FrequencyScale(
                [
                    # energy/work 10 at S=0.5 vs 8 at S=1: slow is dominated
                    FrequencyLevel(speed=0.5, power=5.0),
                    FrequencyLevel(speed=1.0, power=8.0),
                ]
            )


class TestSchedulingQueries:
    @pytest.fixture
    def scale(self, xscale):
        return xscale

    def test_min_feasible_picks_slowest_that_fits(self, scale):
        # work 4 in a window of 16: 4/0.4 = 10 <= 16 but 4/0.15 = 26.7 > 16.
        level = scale.min_feasible_level(work=4.0, window=16.0)
        assert level.speed == pytest.approx(0.4)

    def test_min_feasible_full_speed_edge(self, scale):
        level = scale.min_feasible_level(work=4.0, window=4.0)
        assert level.speed == 1.0

    def test_min_feasible_infeasible_returns_none(self, scale):
        assert scale.min_feasible_level(work=5.0, window=4.0) is None

    def test_min_feasible_zero_work(self, scale):
        assert scale.min_feasible_level(0.0, 1.0).speed == pytest.approx(0.15)

    def test_min_feasible_negative_window(self, scale):
        assert scale.min_feasible_level(1.0, -1.0) is None

    def test_level_at_least(self, scale):
        assert scale.level_at_least(0.5).speed == pytest.approx(0.6)
        assert scale.level_at_least(0.6).speed == pytest.approx(0.6)
        assert scale.level_at_least(2.0).speed == 1.0

    def test_index_of(self, scale):
        assert scale.index_of(scale.min_level) == 0
        assert scale.index_of(scale.max_level) == len(scale) - 1

    def test_max_power(self, scale):
        assert scale.max_power == pytest.approx(3.2)

    def test_xscale_has_no_dominated_levels(self, scale):
        scale.validate_efficiency()  # must not raise

    def test_equality_and_hash(self, scale):
        from repro.cpu.presets import xscale_pxa

        other = xscale_pxa()
        assert scale == other
        assert hash(scale) == hash(other)
        assert scale != FrequencyScale.single_speed(1.0)

    @given(
        work=st.floats(min_value=0.01, max_value=100),
        window=st.floats(min_value=0.01, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_min_feasible_respects_inequality_6(self, work, window):
        """Whenever a level is returned, w / S_n <= window (ineq. (6)),
        and no slower level satisfies it."""
        from repro.cpu.presets import xscale_pxa

        scale = xscale_pxa()
        level = scale.min_feasible_level(work, window)
        if level is None:
            assert work / 1.0 > window
        else:
            assert work / level.speed <= window + 1e-6
            idx = scale.index_of(level)
            if idx > 0:
                slower = scale[idx - 1]
                assert work / slower.speed > window


class TestSwitchingOverhead:
    def test_default_is_free(self):
        assert SwitchingOverhead().is_free

    def test_nonzero_not_free(self):
        assert not SwitchingOverhead(time=0.1).is_free
        assert not SwitchingOverhead(energy=0.5).is_free

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SwitchingOverhead(time=-1.0)
        with pytest.raises(ValueError):
            SwitchingOverhead(energy=-1.0)
