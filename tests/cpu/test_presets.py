"""Unit tests for the processor presets."""

import pytest

from repro.cpu.presets import (
    XSCALE_FREQUENCIES_MHZ,
    XSCALE_POWERS_MW,
    continuous_approximation,
    motivational_example_scale,
    stretch_example_scale,
    two_speed_scale,
    xscale_pxa,
)


class TestXScalePreset:
    def test_five_levels(self):
        scale = xscale_pxa()
        assert len(scale) == 5

    def test_paper_speeds(self):
        """Section 5.1: 150/400/600/800/1000 MHz."""
        speeds = [lv.speed for lv in xscale_pxa()]
        assert speeds == pytest.approx([0.15, 0.4, 0.6, 0.8, 1.0])

    def test_paper_powers_in_watts(self):
        """Section 5.1: 80/400/1000/2000/3200 mW, in watts by default."""
        powers = [lv.power for lv in xscale_pxa()]
        assert powers == pytest.approx([0.08, 0.4, 1.0, 2.0, 3.2])

    def test_custom_power_unit(self):
        powers = [lv.power for lv in xscale_pxa(power_unit=1.0)]
        assert powers == pytest.approx(list(XSCALE_POWERS_MW))

    def test_frequencies_recorded(self):
        freqs = [lv.frequency_hz for lv in xscale_pxa()]
        assert freqs == pytest.approx([f * 1e6 for f in XSCALE_FREQUENCIES_MHZ])

    def test_energy_per_work_strictly_increasing(self):
        """The ladder makes slowing down always save energy."""
        epw = [lv.energy_per_work for lv in xscale_pxa()]
        assert all(a < b for a, b in zip(epw, epw[1:]))

    def test_invalid_power_unit(self):
        with pytest.raises(ValueError):
            xscale_pxa(power_unit=0.0)


class TestExampleScales:
    def test_motivational_ratios(self):
        """Section 2: high speed 2x low; high power 3x low; P_max = 8."""
        scale = motivational_example_scale()
        low, high = scale.min_level, scale.max_level
        assert high.speed / low.speed == pytest.approx(2.0)
        assert high.power / low.power == pytest.approx(3.0)
        assert high.power == pytest.approx(8.0)

    def test_stretch_example(self):
        """Section 4.3: f_n = 0.25 f_max, P_n = 1, P_max = 8."""
        scale = stretch_example_scale()
        assert scale.min_level.speed == pytest.approx(0.25)
        assert scale.min_level.power == pytest.approx(1.0)
        assert scale.max_power == pytest.approx(8.0)

    def test_two_speed_factory(self):
        scale = two_speed_scale(low_speed=0.5, low_power=1.0, max_power=4.0)
        assert len(scale) == 2
        assert scale.min_level.speed == 0.5


class TestContinuousApproximation:
    def test_level_count(self):
        assert len(continuous_approximation(n_levels=16)) == 16

    def test_cubic_power_model(self):
        scale = continuous_approximation(n_levels=8, max_power=3.2, exponent=3.0)
        for level in scale:
            assert level.power == pytest.approx(3.2 * level.speed**3)

    def test_spans_min_speed_to_one(self):
        scale = continuous_approximation(n_levels=10, min_speed=0.1)
        assert scale.min_level.speed == pytest.approx(0.1)
        assert scale.max_level.speed == pytest.approx(1.0)

    def test_no_dominated_levels(self):
        continuous_approximation(n_levels=32).validate_efficiency()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            continuous_approximation(n_levels=1)
        with pytest.raises(ValueError):
            continuous_approximation(min_speed=0.0)
        with pytest.raises(ValueError):
            continuous_approximation(exponent=0.5)
