"""Unit tests for the runtime processor state."""

import pytest

from repro.cpu.dvfs import SwitchingOverhead
from repro.cpu.processor import Processor


@pytest.fixture
def cpu(xscale):
    return Processor(xscale)


class TestLevelSelection:
    def test_starts_idle(self, cpu):
        assert cpu.is_idle
        assert cpu.draw_power == 0.0
        assert cpu.speed == 0.0

    def test_set_level(self, cpu, xscale):
        cpu.set_level(xscale.max_level)
        assert not cpu.is_idle
        assert cpu.draw_power == pytest.approx(3.2)
        assert cpu.speed == 1.0

    def test_back_to_idle(self, cpu, xscale):
        cpu.set_level(xscale.max_level)
        cpu.set_level(None)
        assert cpu.is_idle

    def test_foreign_level_rejected(self, cpu):
        from repro.cpu.dvfs import FrequencyLevel

        with pytest.raises(ValueError, match="not a level"):
            cpu.set_level(FrequencyLevel(speed=0.33, power=1.0))

    def test_idle_power_configurable(self, xscale):
        cpu = Processor(xscale, idle_power=0.05)
        assert cpu.draw_power == 0.05

    def test_negative_idle_power_rejected(self, xscale):
        with pytest.raises(ValueError):
            Processor(xscale, idle_power=-0.1)


class TestSwitchAccounting:
    def test_level_change_counts(self, cpu, xscale):
        cpu.set_level(xscale.min_level)
        cpu.set_level(xscale.max_level)
        assert cpu.switch_count == 1

    def test_same_level_is_free(self, cpu, xscale):
        cpu.set_level(xscale.max_level)
        cpu.set_level(xscale.max_level)
        assert cpu.switch_count == 0

    def test_idle_transitions_are_free(self, cpu, xscale):
        """Clock gating costs nothing; only voltage/frequency hops pay."""
        cpu.set_level(xscale.max_level)
        cpu.set_level(None)
        cpu.set_level(xscale.max_level)
        assert cpu.switch_count == 0

    def test_overhead_returned_on_real_switch(self, xscale):
        overhead = SwitchingOverhead(time=0.1, energy=0.5)
        cpu = Processor(xscale, overhead=overhead)
        cpu.set_level(xscale.min_level)
        assert cpu.set_level(xscale.max_level) == overhead
        assert cpu.switch_time_spent == pytest.approx(0.1)
        assert cpu.switch_energy_spent == pytest.approx(0.5)

    def test_overhead_not_charged_without_switch(self, xscale):
        cpu = Processor(xscale, overhead=SwitchingOverhead(time=0.1))
        assert cpu.set_level(xscale.max_level).is_free
        assert cpu.set_level(None).is_free


class TestTimeAccounting:
    def test_idle_time(self, cpu):
        cpu.account_time(5.0)
        assert cpu.idle_time == 5.0
        assert cpu.total_busy_time == 0.0

    def test_busy_time_per_level(self, cpu, xscale):
        cpu.set_level(xscale.min_level)
        cpu.account_time(3.0)
        cpu.set_level(xscale.max_level)
        cpu.account_time(2.0)
        assert cpu.busy_time_at(0) == pytest.approx(3.0)
        assert cpu.busy_time_at(len(xscale) - 1) == pytest.approx(2.0)
        assert cpu.total_busy_time == pytest.approx(5.0)

    def test_busy_time_profile_keys(self, cpu, xscale):
        profile = cpu.busy_time_profile()
        assert set(profile) == {lv.speed for lv in xscale}
        assert all(v == 0.0 for v in profile.values())

    def test_negative_duration_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.account_time(-1.0)
