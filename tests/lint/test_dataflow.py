"""Abstract-interpretation tests: dimensions must *flow*.

Name-based inference alone cannot see that ``budget = e_avail`` makes
``budget`` an energy, or that ``budget / p_max`` is therefore a time —
eq. (5)'s ``sr_n = E_avail / P_n`` in disguise.  These tests pin the
lattice algebra, the three seeding sources (vocabulary, annotations,
signature index), and the flow-only rule codes RPR203-RPR205.
"""

import ast
import textwrap

from repro.lint.dataflow import (
    analyze_module,
    combine_add,
    combine_div,
    combine_mult,
    join,
)
from repro.lint.index import build_index
from repro.lint.naming import Dimension

TIME = Dimension.TIME
ENERGY = Dimension.ENERGY
POWER = Dimension.POWER
SCALAR = Dimension.DIMENSIONLESS
UNKNOWN = Dimension.UNKNOWN


def flow(snippet: str):
    tree = ast.parse(textwrap.dedent(snippet))
    return analyze_module(tree, build_index([tree])), tree


def dim_of_name(df, tree, name: str, last: bool = True):
    hits = [
        df.dimension_of(node)
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id == name
        and df.dimension_of(node) is not None
    ]
    assert hits, f"no visited occurrence of {name!r}"
    return hits[-1] if last else hits[0]


class TestLattice:
    def test_join(self):
        assert join(TIME, TIME) is TIME
        assert join(TIME, ENERGY) is UNKNOWN
        assert join(TIME, UNKNOWN) is UNKNOWN

    def test_unit_conversion_algebra(self):
        # The paper's conversions: eqs. (5)-(9).
        assert combine_mult(TIME, POWER) is ENERGY
        assert combine_mult(POWER, TIME) is ENERGY
        assert combine_div(ENERGY, POWER) is TIME
        assert combine_div(ENERGY, TIME) is POWER
        assert combine_div(TIME, TIME) is SCALAR

    def test_scalars_are_transparent(self):
        assert combine_mult(TIME, SCALAR) is TIME
        assert combine_div(ENERGY, SCALAR) is ENERGY
        assert combine_add(TIME, SCALAR) is TIME

    def test_additive_mixing_has_no_dimension(self):
        assert combine_add(TIME, ENERGY) is UNKNOWN
        assert combine_add(TIME, TIME) is TIME


class TestPropagation:
    def test_assignment_renames_carry_dimension(self):
        # The acceptance fixture: name-only inference calls `budget`
        # UNKNOWN; dataflow must derive ENERGY then TIME.
        df, tree = flow(
            """
            def f(e_avail, p_max):
                budget = e_avail
                slack = budget / p_max
                return slack
            """
        )
        assert dim_of_name(df, tree, "budget") is ENERGY
        assert dim_of_name(df, tree, "slack") is TIME

    def test_tuple_unpacking(self):
        df, tree = flow(
            """
            def f(deadline, energy):
                a, b = deadline, energy
                return a, b
            """
        )
        assert dim_of_name(df, tree, "a") is TIME
        assert dim_of_name(df, tree, "b") is ENERGY

    def test_conditional_join_agreeing_branches(self):
        df, tree = flow(
            """
            def f(flag, deadline, period):
                if flag:
                    x = deadline
                else:
                    x = period
                return x
            """
        )
        assert dim_of_name(df, tree, "x") is TIME

    def test_conditional_join_disagreeing_branches(self):
        df, tree = flow(
            """
            def f(flag, deadline, energy):
                if flag:
                    x = deadline
                else:
                    x = energy
                return x
            """
        )
        assert dim_of_name(df, tree, "x") is UNKNOWN

    def test_literal_scaling_keeps_dimension(self):
        df, tree = flow(
            """
            def f(deadline):
                margin = deadline * 2.0
                return margin
            """
        )
        assert dim_of_name(df, tree, "margin") is TIME

    def test_annotation_seeds_dimension(self):
        df, tree = flow(
            """
            from repro.timeutils import Joules, Watts

            def f(budget: Joules, drain: Watts):
                left = budget / drain
                return left
            """
        )
        assert dim_of_name(df, tree, "left") is TIME

    def test_comprehension_sum_keeps_element_dimension(self):
        df, tree = flow(
            """
            def f(jobs):
                total = sum(j.wcet for j in jobs)
                load = total
                return load
            """
        )
        assert dim_of_name(df, tree, "load") is TIME


class TestFlowAwareRules:
    def test_acceptance_fixture_flags_derived_dimension(self, codes_in):
        # `budget / p_max` is a *time* (eq. (5)); comparing it against an
        # energy must flag even though neither name says "time".
        assert codes_in(
            """
            def f(e_avail, p_max):
                budget = e_avail
                if budget / p_max > e_avail:
                    return budget
                return p_max
            """
        ) == ["RPR202"]

    def test_name_only_inference_misses_the_fixture(self):
        from repro.lint.rules_comparison import expression_dimension

        node = ast.parse("budget / p_max", mode="eval").body
        assert expression_dimension(node) is UNKNOWN

    def test_reassignment_contradiction_rpr203(self, codes_in):
        assert codes_in(
            """
            def f(e_avail):
                deadline = e_avail
                return deadline
            """
        ) == ["RPR203"]

    def test_return_contradiction_rpr204(self, codes_in):
        assert codes_in(
            """
            from repro.timeutils import Joules, Seconds

            def remaining_time(budget: Joules) -> Seconds:
                return budget
            """
        ) == ["RPR204"]

    def test_wrong_argument_rpr205(self, codes_in):
        assert codes_in(
            """
            def charge(amount_energy):
                return amount_energy

            def caller(harvest_power):
                return charge(harvest_power)
            """
        ) == ["RPR205"]

    def test_attribute_dimension_through_index(self, codes_in):
        assert codes_in(
            """
            class Job:
                def __init__(self, deadline: float) -> None:
                    self.deadline = deadline

            def f(job, e_avail):
                return job.deadline < e_avail
            """
        ) == ["RPR202"]

    def test_augmented_mixing_rpr201(self, codes_in):
        assert codes_in(
            """
            def f(stored_energy, harvest_power):
                stored_energy += harvest_power
                return stored_energy
            """
        ) == ["RPR201"]

    def test_conversion_is_never_flagged(self, codes_in):
        # Legitimate eq. (5) arithmetic must stay silent.
        assert codes_in(
            """
            def f(e_avail, p_max, deadline, now):
                sr_n = e_avail / p_max
                s1 = max(now, deadline - sr_n)
                return s1
            """
        ) == []

    def test_loop_body_is_visited(self, codes_in):
        assert codes_in(
            """
            def f(jobs, e_avail):
                for job in jobs:
                    budget = e_avail
                    if budget > job.deadline:
                        return job
                return None
            """
        ) == ["RPR202"]


class TestSignatureIndexPoisoning:
    def test_conflicting_defs_poison_the_name(self):
        tree_a = ast.parse("def f(deadline):\n    return deadline\n")
        tree_b = ast.parse("def f(energy):\n    return energy\n")
        index = build_index([tree_a, tree_b])
        assert index.function("f") is None

    def test_conflicting_attributes_poison(self):
        src_a = """
        class A:
            def __init__(self, deadline: float) -> None:
                self.x = deadline
        """
        src_b = """
        class B:
            def __init__(self, energy: float) -> None:
                self.x = energy
        """
        tree_a = ast.parse(textwrap.dedent(src_a))
        tree_b = ast.parse(textwrap.dedent(src_b))
        assert build_index([tree_a]).attribute_dimension("x") is TIME
        # Two definitions disagree -> the entry is poisoned to UNKNOWN.
        assert (
            build_index([tree_a, tree_b]).attribute_dimension("x") is UNKNOWN
        )
