"""Determinism rule family (RPR001-RPR004)."""


class TestGlobalRandom:
    def test_import_random_flagged(self, codes_in):
        assert "RPR001" in codes_in("import random\n")

    def test_from_random_import_flagged(self, codes_in):
        assert "RPR001" in codes_in("from random import shuffle\n")

    def test_random_call_flagged(self, codes_in):
        assert "RPR001" in codes_in("value = random.random()\n")

    def test_numpy_default_rng_not_confused_with_random(self, codes_in):
        assert codes_in(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        ) == []


class TestWallClock:
    def test_time_time_flagged(self, codes_in):
        assert "RPR002" in codes_in("import time\nstamp = time.time()\n")

    def test_datetime_now_flagged(self, codes_in):
        assert "RPR002" in codes_in(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )

    def test_perf_counter_allowed(self, codes_in):
        # perf_counter times the real execution (progress meters), which
        # is legitimate; it must not be flagged.
        assert codes_in("import time\nstart = time.perf_counter()\n") == []

    def test_monotonic_allowed(self, codes_in):
        assert codes_in("import time\nstart = time.monotonic()\n") == []


class TestSeededRng:
    def test_unseeded_default_rng_flagged(self, codes_in):
        assert "RPR003" in codes_in(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )

    def test_none_seed_flagged(self, codes_in):
        assert "RPR003" in codes_in(
            "import numpy as np\nrng = np.random.default_rng(None)\n"
        )

    def test_explicit_seed_clean(self, codes_in):
        assert codes_in(
            "import numpy as np\nrng = np.random.default_rng(seed)\n"
        ) == []

    def test_keyword_seed_clean(self, codes_in):
        assert codes_in(
            "import numpy as np\nrng = np.random.default_rng(seed=3)\n"
        ) == []

    def test_allowed_under_tests_tree(self, codes_in):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes_in(snippet, filename="tests/fake/test_x.py") == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self, codes_in):
        assert "RPR004" in codes_in("for x in {1, 2, 3}:\n    pass\n")

    def test_for_over_set_call_flagged(self, codes_in):
        assert "RPR004" in codes_in("for x in set(items):\n    pass\n")

    def test_comprehension_over_set_flagged(self, codes_in):
        assert "RPR004" in codes_in("out = [x for x in {1, 2}]\n")

    def test_list_of_set_flagged(self, codes_in):
        assert "RPR004" in codes_in("order = list(set(items))\n")

    def test_sorted_set_is_clean(self, codes_in):
        assert codes_in("for x in sorted(set(items)):\n    pass\n") == []

    def test_plain_list_iteration_clean(self, codes_in):
        assert codes_in("for x in [1, 2, 3]:\n    pass\n") == []
