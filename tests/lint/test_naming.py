"""Vocabulary edge cases for :mod:`repro.lint.naming`.

The dataflow analyzer seeds every environment from these two functions,
so their behaviour on odd identifiers (ALLCAPS constants, digit-adjacent
segments, dunders) is part of the analyzer's contract — and
``infer_dimension`` must be total: any string in, a Dimension out.
"""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.naming import Dimension, infer_dimension, split_words


class TestSplitWords:
    def test_snake_case(self):
        assert split_words("harvest_power") == ["harvest", "power"]

    def test_allcaps_constant(self):
        assert split_words("EPSILON") == ["epsilon"]
        assert split_words("MAX_HORIZON") == ["max", "horizon"]

    def test_digit_adjacent_segments(self):
        assert split_words("t0_energy") == ["t0", "energy"]
        assert split_words("sr_max") == ["sr", "max"]
        assert split_words("s1") == ["s1"]

    def test_dunders_and_private_names(self):
        assert split_words("__init__") == ["init"]
        assert split_words("_stored") == ["stored"]
        assert split_words("__") == []

    def test_doubled_underscores_drop_empty_segments(self):
        assert split_words("a__b") == ["a", "b"]

    def test_empty_string(self):
        assert split_words("") == []


class TestInferDimension:
    def test_exact_vocabulary(self):
        assert infer_dimension("deadline") is Dimension.TIME
        assert infer_dimension("wcet") is Dimension.TIME
        assert infer_dimension("stored") is Dimension.ENERGY
        assert infer_dimension("speed") is Dimension.DIMENSIONLESS

    def test_suffix_vocabulary(self):
        assert infer_dimension("harvest_power") is Dimension.POWER
        assert infer_dimension("t0_energy") is Dimension.ENERGY
        assert infer_dimension("switch_to_max_at") is Dimension.TIME

    def test_allcaps_resolve_like_lowercase(self):
        assert infer_dimension("MAX_DEADLINE") is Dimension.TIME
        assert infer_dimension("IDLE_POWER") is Dimension.POWER

    def test_paper_notation_prefixes(self):
        # E_avail / P_n from eqs. (5)-(6); suffix wins when both match.
        assert infer_dimension("e_avail") is Dimension.ENERGY
        assert infer_dimension("p_max") is Dimension.POWER
        assert infer_dimension("e_rate") is Dimension.POWER

    def test_bare_prefix_letter_is_not_classified(self):
        assert infer_dimension("e") is Dimension.UNKNOWN
        assert infer_dimension("p") is Dimension.UNKNOWN

    def test_predicate_and_helper_names_are_unknown(self):
        assert infer_dimension("is_empty") is Dimension.UNKNOWN
        assert infer_dimension("time_to_empty") is Dimension.UNKNOWN
        assert infer_dimension("has_spikes") is Dimension.UNKNOWN
        assert infer_dimension("total_drawn") is Dimension.UNKNOWN

    def test_count_fraction_exceptions(self):
        assert infer_dimension("miss_rate") is Dimension.DIMENSIONLESS
        assert infer_dimension("fade_rate") is Dimension.POWER

    def test_degenerate_identifiers(self):
        assert infer_dimension("") is Dimension.UNKNOWN
        assert infer_dimension("_") is Dimension.UNKNOWN
        assert infer_dimension("__init__") is Dimension.UNKNOWN

    @given(
        st.text(
            alphabet=string.ascii_letters + string.digits + "_",
            max_size=40,
        )
    )
    def test_never_raises_on_identifier_like_text(self, identifier):
        assert infer_dimension(identifier) in Dimension

    @given(st.text(max_size=40))
    def test_never_raises_on_arbitrary_text(self, text):
        # Attribute names reach the vocabulary unfiltered; totality is
        # part of the contract.
        assert infer_dimension(text) in Dimension
