"""``repro lint --fix``: safe rewrites, import merging, idempotence."""

import textwrap

from repro.lint import apply_fixes, lint_paths
from repro.lint.fixers import SeededRngFixer, all_fixers


def _write(tmp_path, name, snippet):
    path = tmp_path / name
    path.write_text(textwrap.dedent(snippet), encoding="utf-8")
    return path


def _fix(tmp_path):
    return apply_fixes([tmp_path], root=tmp_path)


SNIPPET = """
def f(deadline, now):
    if deadline == 0.0:
        return now
    return deadline < now
"""


class TestTolerantComparisonFixer:
    def test_rewrites_to_predicates(self, tmp_path):
        path = _write(tmp_path, "mod.py", SNIPPET)
        outcome = _fix(tmp_path)
        assert outcome.edits_applied == 2
        fixed = path.read_text()
        assert "time_eq(deadline, 0.0)" in fixed
        assert "time_lt(deadline, now)" in fixed
        assert "from repro.timeutils import time_eq, time_lt" in fixed

    def test_post_fix_report_is_clean(self, tmp_path):
        _write(tmp_path, "mod.py", SNIPPET)
        outcome = _fix(tmp_path)
        assert outcome.report_after is not None
        assert outcome.report_after.ok, outcome.report_after.format_text()

    def test_idempotent(self, tmp_path):
        path = _write(tmp_path, "mod.py", SNIPPET)
        _fix(tmp_path)
        once = path.read_text()
        second = _fix(tmp_path)
        assert second.edits_applied == 0
        assert path.read_text() == once

    def test_not_eq_is_parenthesized(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def f(deadline, now):
                return deadline != now and now != 0.0
            """,
        )
        _fix(tmp_path)
        fixed = path.read_text()
        assert "(not time_eq(deadline, now))" in fixed
        assert "(not time_eq(now, 0.0))" in fixed

    def test_merges_into_existing_timeutils_import(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from repro.timeutils import EPSILON

            def f(deadline, now):
                return deadline < now
            """,
        )
        _fix(tmp_path)
        fixed = path.read_text()
        assert "from repro.timeutils import EPSILON, time_lt" in fixed
        assert fixed.count("from repro.timeutils") == 1

    def test_chained_comparisons_are_left_alone(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def f(t0, t1, deadline):
                return t0 < t1 < deadline
            """,
        )
        before = path.read_text()
        outcome = _fix(tmp_path)
        assert outcome.edits_applied == 0
        assert path.read_text() == before

    def test_multiline_comparison_collapses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def f(completion_deadline, absolute_deadline):
                return (completion_deadline
                        < absolute_deadline)
            """,
        )
        outcome = _fix(tmp_path)
        assert outcome.edits_applied == 1
        assert "time_lt(completion_deadline, absolute_deadline)" in (
            path.read_text()
        )
        assert outcome.report_after is not None and outcome.report_after.ok

    def test_suppressed_findings_are_not_fixed(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def f(deadline):
                return deadline == 0.0  # repro-lint: disable=RPR101 -- exact
            """,
        )
        before = path.read_text()
        outcome = _fix(tmp_path)
        assert outcome.edits_applied == 0
        assert path.read_text() == before


class TestSafetyGate:
    def test_unsafe_fixers_are_never_applied(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        before = path.read_text()
        outcome = _fix(tmp_path)
        assert outcome.edits_applied == 0
        assert path.read_text() == before

    def test_unsafe_fixer_is_registered_but_flagged(self):
        rng = [f for f in all_fixers() if isinstance(f, SeededRngFixer)]
        assert len(rng) == 1 and not rng[0].safe

    def test_unsafe_fixer_would_plan_the_documented_edit(self, tmp_path):
        # The fixer exists so --list-fixers can explain the manual fix;
        # its plan is exercised directly, never through apply_fixes.
        from repro.lint.engine import _parse_module

        path = _write(
            tmp_path,
            "mod.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        report = lint_paths([path], root=tmp_path)
        ctx, _ = _parse_module(path, tmp_path, path.read_text())
        assert ctx is not None
        fixes = SeededRngFixer().plan(ctx, report.diagnostics)
        assert len(fixes) == 1
        assert fixes[0].edit.replacement.endswith("default_rng(0)")
