"""Exit-code contract of ``repro lint`` end to end.

The CLI promises 0 = clean, 1 = findings (or a tripped gate), 2 =
usage/internal error.  These tests drive :func:`repro.cli.main` over a
throwaway tree so the baseline ratchet, ``--fail-on-stale``, ``--fix``,
and the ``--format github`` annotations are exercised exactly the way
CI invokes them.
"""

import pytest

from repro.cli import main

#: One RPR101 finding: a time-named quantity compared to a float literal.
FINDING = "done = duration == 0.0\n"

#: A suppression matching no finding: stale (RPR903 note).
STALE = "count = 1  # repro-lint: disable=RPR101 -- nothing to suppress\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """Chdir into a throwaway tree with a src/repro package dir."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    monkeypatch.chdir(tmp_path)

    def write(name: str, source: str) -> None:
        (pkg / name).write_text(source, encoding="utf-8")

    return write


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree):
        tree("clean.py", "X = 1\n")
        assert main(["lint", "src"]) == 0

    def test_findings_exit_one(self, tree, capsys):
        tree("dirty.py", FINDING)
        assert main(["lint", "src"]) == 1
        assert "RPR101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "error" in capsys.readouterr().err

    def test_update_baseline_requires_baseline_path(self, tree, capsys):
        tree("clean.py", "X = 1\n")
        assert main(["lint", "src", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestBaselineRatchet:
    def test_baselined_findings_pass(self, tree, capsys):
        tree("dirty.py", FINDING)
        assert (
            main(
                [
                    "lint", "src", "--baseline", "base.json",
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["lint", "src", "--baseline", "base.json"]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_new_finding_fails_the_gate(self, tree, capsys):
        tree("dirty.py", FINDING)
        main(["lint", "src", "--baseline", "base.json", "--update-baseline"])
        tree("worse.py", FINDING)
        capsys.readouterr()
        assert main(["lint", "src", "--baseline", "base.json"]) == 1
        assert "new finding(s)" in capsys.readouterr().out

    def test_update_on_clean_tree_writes_empty_baseline(self, tree, capsys):
        tree("clean.py", "X = 1\n")
        assert (
            main(
                [
                    "lint", "src", "--baseline", "base.json",
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "0 finding(s)" in capsys.readouterr().out
        assert main(["lint", "src", "--baseline", "base.json"]) == 0

    def test_suppression_growth_fails_the_gate(self, tree, capsys):
        tree("clean.py", "X = 1\n")
        main(["lint", "src", "--baseline", "base.json", "--update-baseline"])
        tree(
            "hushed.py",
            "done = duration == 0.0  "
            "# repro-lint: disable=RPR101 -- exact by construction\n",
        )
        capsys.readouterr()
        assert main(["lint", "src", "--baseline", "base.json"]) == 1
        assert "suppression count grew" in capsys.readouterr().out


class TestFailOnStale:
    def test_stale_is_a_note_by_default(self, tree, capsys):
        tree("hushed.py", STALE)
        assert main(["lint", "src"]) == 0
        assert "stale suppression" in capsys.readouterr().out

    def test_fail_on_stale_exits_one(self, tree, capsys):
        tree("hushed.py", STALE)
        assert main(["lint", "src", "--fail-on-stale"]) == 1
        assert "repro lint --fix" in capsys.readouterr().err

    def test_fix_strips_stale_then_gate_passes(self, tree, capsys):
        tree("hushed.py", STALE)
        assert main(["lint", "src", "--fix"]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--fail-on-stale"]) == 0
        report = capsys.readouterr().out
        assert "stale suppression" not in report

    def test_fail_on_stale_composes_with_baseline(self, tree, capsys):
        tree("hushed.py", STALE)
        main(["lint", "src", "--baseline", "base.json", "--update-baseline"])
        capsys.readouterr()
        assert (
            main(
                [
                    "lint", "src", "--baseline", "base.json",
                    "--fail-on-stale",
                ]
            )
            == 1
        )


class TestCertifyCli:
    MANIFEST = '[hash-closure]\nroots = ["repro/mod.py::canon"]\n'

    def test_no_manifest_exits_two(self, tree, capsys):
        tree("clean.py", "X = 1\n")
        assert main(["lint", "src", "--certify"]) == 2
        assert "nothing to certify" in capsys.readouterr().out

    def test_certified_root_exits_zero(self, tree, tmp_path, capsys):
        tree("mod.py", "def canon(x):\n    return x + 1\n")
        (tmp_path / "purity-roots.toml").write_text(self.MANIFEST)
        assert main(["lint", "src", "--certify"]) == 0
        assert "fully certified" in capsys.readouterr().out

    def test_tainted_root_exits_one(self, tree, tmp_path, capsys):
        tree(
            "mod.py",
            "import time\n\n\ndef canon(x):\n    return time.time()\n",
        )
        (tmp_path / "purity-roots.toml").write_text(self.MANIFEST)
        assert main(["lint", "src", "--certify"]) == 1
        assert "NOT certified" in capsys.readouterr().out

    def test_explain_path_tainted_exits_one(self, tree, tmp_path, capsys):
        tree(
            "mod.py",
            "import time\n\n\ndef canon(x):\n    return time.time()\n",
        )
        (tmp_path / "purity-roots.toml").write_text(self.MANIFEST)
        assert (
            main(["lint", "src", "--explain-path", "RPR501:canon"]) == 1
        )
        assert "taint: wall-clock read" in capsys.readouterr().out

    def test_explain_path_clean_exits_zero(self, tree, capsys):
        tree("mod.py", "def canon(x):\n    return x + 1\n")
        assert (
            main(["lint", "src", "--explain-path", "RPR501:canon"]) == 0
        )
        assert "closure is clean" in capsys.readouterr().out

    def test_explain_path_bad_spec_exits_two(self, tree, capsys):
        tree("mod.py", "def canon(x):\n    return x + 1\n")
        assert (
            main(["lint", "src", "--explain-path", "bogus"]) == 2
        )
        assert "error" in capsys.readouterr().err


class TestGithubFormat:
    def test_finding_renders_error_command(self, tree, capsys):
        tree("dirty.py", FINDING)
        assert main(["lint", "src", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert (
            "::error file=src/repro/dirty.py,line=1,col=8,"
            "title=RPR101::" in out
        )

    def test_stale_renders_notice_command(self, tree, capsys):
        tree("hushed.py", STALE)
        assert main(["lint", "src", "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::notice file=src/repro/hushed.py" in out
        assert "title=RPR903" in out

    def test_clean_tree_prints_nothing(self, tree, capsys):
        tree("clean.py", "X = 1\n")
        assert main(["lint", "src", "--format", "github"]) == 0
        assert capsys.readouterr().out == ""

    def test_newlines_escape_into_one_command_line(self, tree, capsys):
        tree("dirty.py", FINDING)
        main(["lint", "src", "--format", "github"])
        out = capsys.readouterr().out
        for line in out.splitlines():
            assert line.startswith("::")
