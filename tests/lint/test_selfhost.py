"""The linter is self-hosted: the shipped tree must stay clean.

``src/``, ``benchmarks/``, and ``examples/`` carry zero findings
outright.  ``tests/`` is linted under the relaxed profile and its
accepted findings (exact pytest assertions, mostly RPR101/RPR102) are
pinned in the committed ``lint-baseline.json`` — the full default tree
must be baseline-clean, so a change may not introduce new findings
anywhere nor grow the suppression count, and no suppression may go
stale (CI runs with ``--fail-on-stale``).  If a change trips this,
either fix the violation or add an inline suppression
(``disable=<code> -- why``) with a justification and regenerate the
baseline (see ``docs/static-analysis.md``).
"""

from pathlib import Path

from repro.lint import Baseline, lint_paths
from repro.lint import rules_purity
from repro.lint.engine import load_modules
from repro.lint.purity import analyze, certify, parse_manifest

REPO_ROOT = Path(__file__).resolve().parents[2]

DEFAULT_TREE = [
    REPO_ROOT / "src",
    REPO_ROOT / "benchmarks",
    REPO_ROOT / "examples",
    REPO_ROOT / "tests",
]


class TestSelfHost:
    def test_src_benchmarks_examples_are_clean(self):
        report = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ],
            root=REPO_ROOT,
        )
        assert report.files_checked > 80
        assert report.ok, "\n" + report.format_text()

    def test_lint_package_lints_itself(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "lint"], root=REPO_ROOT
        )
        assert report.ok, "\n" + report.format_text()

    def test_default_tree_is_baseline_clean(self):
        """The CI gate: no new findings vs the committed baseline."""
        report = lint_paths(DEFAULT_TREE, root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        comparison = baseline.compare(report)
        assert comparison.ok, "\n" + comparison.format_text()

    def test_no_stale_suppressions(self):
        """CI runs with --fail-on-stale; the tree must satisfy it."""
        report = lint_paths(DEFAULT_TREE, root=REPO_ROOT)
        stale = "\n".join(d.format_text() for d in report.stale_suppressions)
        assert not report.stale_suppressions, "\n" + stale

    def test_timing_recorded_and_under_budget(self):
        """The engine shares one parse/tokenize/walk per file across all
        rule families; before PR 10 a full-tree run took ~8.5s on the CI
        baseline box, after it ~4.3s.  The generous ceiling only catches
        a pathological regression (an accidental per-rule re-analysis),
        not scheduler jitter."""
        report = lint_paths(DEFAULT_TREE, root=REPO_ROOT)
        assert report.elapsed_seconds is not None
        assert report.elapsed_seconds < 30.0, report.elapsed_seconds
        assert (
            f"in {report.elapsed_seconds:.2f}s" in report.format_text()
        )

    def test_one_purity_analysis_per_run(self):
        """All seven interprocedural RPR5xx rules share one whole-program
        analysis build per engine run."""
        before = rules_purity.ANALYSIS_BUILDS
        lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert rules_purity.ANALYSIS_BUILDS - before == 1

    def test_hash_closure_fully_certified(self):
        """The CI purity gate: every checked-in hash-closure root must
        certify deterministic with zero exceptions."""
        manifest_path = REPO_ROOT / "purity-roots.toml"
        manifest = parse_manifest(
            manifest_path.read_text(encoding="utf-8"), path=manifest_path
        )
        assert manifest.hash_closure_roots, "manifest lost its roots"
        modules, extras = load_modules(
            [REPO_ROOT / "src"], root=REPO_ROOT
        )
        assert not extras, extras
        report = certify(analyze(modules), manifest)
        assert report.ok, "\n" + report.format_text()
        assert set(report.certified_refs) == set(
            manifest.hash_closure_roots
        )

    def test_baselined_findings_are_only_comparison_codes(self):
        """The baseline may pin relaxed-profile comparison findings in
        tests/, never a determinism/unit/contract violation."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        for path, code, _message in baseline.counts:
            assert path.startswith("tests/"), (path, code)
            assert code in ("RPR101", "RPR102"), (path, code)
