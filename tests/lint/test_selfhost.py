"""The linter is self-hosted: the shipped tree must be clean.

This is the committed zero-findings baseline the CI lint job enforces.
If a change trips it, either fix the violation or add an inline
``# repro-lint: disable=RPRxxx -- why`` with a justification (see
``docs/static-analysis.md``).
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfHost:
    def test_src_and_benchmarks_are_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], root=REPO_ROOT
        )
        assert report.files_checked > 80
        assert report.ok, "\n" + report.format_text()

    def test_lint_package_lints_itself(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "lint"], root=REPO_ROOT
        )
        assert report.ok, "\n" + report.format_text()
