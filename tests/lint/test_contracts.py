"""API-contract rule family (RPR301-RPR303)."""

import textwrap

from repro.lint import lint_source
from repro.lint.rules_contracts import (
    SchedulerHooksRule,
    SchedulerRegistrationRule,
)
from repro.lint.engine import ModuleContext, parse_suppressions

import ast
from pathlib import Path


def _ctx(source: str, display: str) -> ModuleContext:
    source = textwrap.dedent(source)
    suppressions, _ = parse_suppressions(source)
    return ModuleContext(
        path=Path(display),
        display_path=display,
        source=source,
        tree=ast.parse(source),
        suppressions=suppressions,
    )


class TestSchedulerHooks:
    def test_subclass_with_decide_but_no_name_flagged(self, codes_in):
        assert "RPR301" in codes_in(
            """
            class MyScheduler(Scheduler):
                def decide(self, now, ready, outlook):
                    return Decision.idle()
            """
        )

    def test_subclass_with_neither_hook_flagged(self, codes_in):
        assert "RPR301" in codes_in(
            """
            class MyScheduler(EaDvfsScheduler):
                pass
            """
        )

    def test_complete_subclass_clean(self, codes_in):
        assert codes_in(
            """
            class MyScheduler(Scheduler):
                name = "mine"

                def decide(self, now, ready, outlook):
                    return Decision.idle()
            """
        ) == []

    def test_annotated_name_assignment_counts(self, codes_in):
        assert codes_in(
            """
            class MyScheduler(Scheduler):
                name: ClassVar[str] = "mine"

                def decide(self, now, ready, outlook):
                    return Decision.idle()
            """
        ) == []

    def test_abstract_intermediary_exempt(self, codes_in):
        assert codes_in(
            """
            class BaseEnergyScheduler(Scheduler):
                @abc.abstractmethod
                def outlook_hook(self):
                    ...
            """
        ) == []

    def test_unrelated_class_ignored(self, codes_in):
        assert codes_in("class Widget(Base):\n    pass\n") == []


class TestSchedulerRegistration:
    REGISTRY = """
        _FACTORIES = {}

        def _ensure_builtins():
            from repro.core.ea_dvfs import EaDvfsScheduler
            for cls in (EaDvfsScheduler,):
                _FACTORIES.setdefault(cls.name, cls)
        """

    POLICY = """
        class RogueScheduler(Scheduler):
            name = "rogue"

            def decide(self, now, ready, outlook):
                return Decision.idle()
        """

    def test_unregistered_scheduler_flagged(self):
        rule = SchedulerRegistrationRule()
        modules = [
            _ctx(self.REGISTRY, "src/repro/sched/registry.py"),
            _ctx(self.POLICY, "src/repro/sched/rogue.py"),
        ]
        findings = list(rule.check_project(modules))
        assert [f.code for f in findings] == ["RPR302"]
        assert "RogueScheduler" in findings[0].message

    def test_registry_mention_satisfies_rule(self):
        rule = SchedulerRegistrationRule()
        registry = self.REGISTRY.replace(
            "EaDvfsScheduler,)", "EaDvfsScheduler, RogueScheduler)"
        )
        modules = [
            _ctx(registry, "src/repro/sched/registry.py"),
            _ctx(self.POLICY, "src/repro/sched/rogue.py"),
        ]
        assert list(rule.check_project(modules)) == []

    def test_register_scheduler_call_satisfies_rule(self):
        rule = SchedulerRegistrationRule()
        policy = self.POLICY + (
            "register_scheduler('rogue', RogueScheduler)\n"
        )
        modules = [
            _ctx(self.REGISTRY, "src/repro/sched/registry.py"),
            _ctx(policy, "src/repro/sched/rogue.py"),
        ]
        assert list(rule.check_project(modules)) == []

    def test_without_registry_in_run_stays_silent(self):
        rule = SchedulerRegistrationRule()
        modules = [_ctx(self.POLICY, "src/repro/sched/rogue.py")]
        assert list(rule.check_project(modules)) == []

    def test_test_code_is_exempt(self):
        rule = SchedulerRegistrationRule()
        modules = [
            _ctx(self.REGISTRY, "src/repro/sched/registry.py"),
            _ctx(self.POLICY, "tests/sched/test_rogue.py"),
        ]
        assert list(rule.check_project(modules)) == []


class TestFrozenSpecMutation:
    def test_attribute_assignment_on_spec_flagged(self, codes_in):
        assert "RPR303" in codes_in("spec.horizon = 10.0\n")

    def test_annotated_parameter_tracked(self, codes_in):
        assert "RPR303" in codes_in(
            """
            def tweak(world: ScenarioSpec) -> None:
                world.capacity = 1.0
            """
        )

    def test_object_setattr_on_foreign_instance_flagged(self, codes_in):
        assert "RPR303" in codes_in(
            "object.__setattr__(spec, 'horizon', 10.0)\n"
        )

    def test_object_setattr_on_self_allowed(self, codes_in):
        # Frozen dataclasses legitimately use object.__setattr__ on self
        # inside __post_init__.
        assert codes_in(
            """
            class Thing:
                def __post_init__(self):
                    object.__setattr__(self, "cached", 1)
            """
        ) == []

    def test_replace_is_the_blessed_path(self, codes_in):
        assert codes_in(
            "new_spec = dataclasses.replace(spec, horizon=20.0)\n"
        ) == []

    def test_unrelated_attribute_assignment_clean(self, codes_in):
        assert codes_in("config.horizon = 10.0\n") == []


class TestSelfDocumentation:
    def test_rule_table_in_package_docstring_is_complete(self):
        import repro.lint
        from repro.lint import all_rules

        for rule in all_rules():
            assert rule.code in repro.lint.__doc__


class TestSeededViolationsPerFamily:
    """Non-vacuity: one deliberately planted violation per family."""

    def test_all_four_families_fire_on_one_snippet(self):
        report = lint_source(
            textwrap.dedent(
                """
                import random

                def plan(now, deadline, stored, harvest_power):
                    jitter = random.random()          # determinism
                    if duration == 0.0:               # tolerant comparison
                        pass
                    budget = stored + harvest_power   # unit mixing
                    return budget

                class GhostScheduler(Scheduler):      # missing `name`
                    def decide(self, now, ready, outlook):
                        return Decision.idle()
                """
            )
        )
        codes = {d.code for d in report.diagnostics}
        assert {"RPR001", "RPR101", "RPR201", "RPR301"} <= codes
