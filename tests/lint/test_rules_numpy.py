"""Tests for the float-determinism doctrine rules (RPR401-RPR405).

The family is opt-in per module via the ``# repro: float-doctrine``
pragma, so every positive case here carries the pragma and the gating
tests prove that prose mentions and trailing comments do *not* opt a
module in.  All checks ride on the conservative array-kind facet
(:func:`repro.lint.dataflow.analyze_arrays`): annotations like
``FloatArray``/``IntArray`` and numpy constructors are the only sources
of positive knowledge, so unannotated code stays silent.
"""

import textwrap

from repro.lint import lint_source
from repro.lint.rules_numpy import (
    DEFAULT_DIVERGENT_UFUNCS,
    SimdDivergentUfuncRule,
)

PRAGMA = "# repro: float-doctrine\n"


def doctrine(snippet: str) -> str:
    """Prefix a dedented snippet with the doctrine pragma."""
    return PRAGMA + textwrap.dedent(snippet)


class TestDoctrineGating:
    SNIPPET = """
        import numpy as np

        def total(values: FloatArray) -> float:
            return np.sum(values)
    """

    def test_pragma_opts_in(self, codes_in):
        assert codes_in(doctrine(self.SNIPPET)) == ["RPR401"]

    def test_without_pragma_rules_stay_silent(self, codes_in):
        assert codes_in(self.SNIPPET) == []

    def test_prose_mention_does_not_opt_in(self, codes_in):
        snippet = (
            '"""Module prose referring to the # repro: float-doctrine '
            'pragma."""\n' + textwrap.dedent(self.SNIPPET)
        )
        assert codes_in(snippet) == []

    def test_trailing_comment_does_not_opt_in(self, codes_in):
        snippet = (
            "X = 1  # repro: float-doctrine\n"
            + textwrap.dedent(self.SNIPPET)
        )
        assert codes_in(snippet) == []

    def test_relaxed_under_tests(self, codes_in):
        assert (
            codes_in(
                doctrine(self.SNIPPET), filename="tests/lint/fake.py"
            )
            == []
        )


class TestUnorderedReduction:
    def test_np_sum_over_float_array(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def total(values: FloatArray) -> float:
                        return np.sum(values)
                    """
                )
            )
            == ["RPR401"]
        )

    def test_sum_method_on_float_array(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def total(values: FloatArray) -> float:
                        return values.sum()
                    """
                )
            )
            == ["RPR401"]
        )

    def test_matmul_operator(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def combine(a: FloatArray, b: FloatArray) -> FloatArray:
                        return a @ b
                    """
                )
            )
            == ["RPR401"]
        )

    def test_cumsum_is_the_pinned_idiom(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def running(values: FloatArray) -> FloatArray:
                        return np.cumsum(values)
                    """
                )
            )
            == []
        )

    def test_order_insensitive_reductions_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def peak(values: FloatArray) -> float:
                        return np.max(values)
                    """
                )
            )
            == []
        )

    def test_int_array_sum_is_exact(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def total(counts: IntArray) -> int:
                        return np.sum(counts)
                    """
                )
            )
            == []
        )


class TestSimdDivergentUfunc:
    def test_np_power_flagged(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def square(values: FloatArray) -> FloatArray:
                        return np.power(values, 2.0)
                    """
                )
            )
            == ["RPR402"]
        )

    def test_star_star_on_float_array_flagged(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def square(values: FloatArray) -> FloatArray:
                        return values ** 2.0
                    """
                )
            )
            == ["RPR402"]
        )

    def test_scalar_pow_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def cube(x: float) -> float:
                        return x ** 3.0
                    """
                )
            )
            == []
        )

    def test_sqrt_is_correctly_rounded(self, codes_in):
        assert "sqrt" not in DEFAULT_DIVERGENT_UFUNCS
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def root(values: FloatArray) -> FloatArray:
                        return np.sqrt(values)
                    """
                )
            )
            == []
        )

    def test_table_is_configurable(self):
        source = doctrine(
            """
            import numpy as np

            def f(values: FloatArray) -> FloatArray:
                return np.power(values, np.exp(values))
            """
        )
        report = lint_source(
            source,
            filename="src/repro/fake.py",
            rules=[SimdDivergentUfuncRule(frozenset({"exp"}))],
        )
        messages = [d.message for d in report.diagnostics]
        assert len(messages) == 1
        assert "np.exp" in messages[0]


class TestDtypePromotion:
    def test_int_array_into_float_arithmetic(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def scale(values: FloatArray, counts: IntArray) -> FloatArray:
                        return values * counts
                    """
                )
            )
            == ["RPR403"]
        )

    def test_astype_pins_the_conversion(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def scale(values: FloatArray, counts: IntArray) -> FloatArray:
                        return values * counts.astype(np.float64)
                    """
                )
            )
            == []
        )

    def test_float_scalar_broadcast_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def scale(values: FloatArray, factor: float) -> FloatArray:
                        return values * factor
                    """
                )
            )
            == []
        )

    def test_non_float64_dtype_attribute(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    HALF = np.float32
                    """
                )
            )
            == ["RPR403"]
        )

    def test_non_float64_dtype_string(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def buf(n: int):
                        return np.zeros(n, dtype="float32")
                    """
                )
            )
            == ["RPR403"]
        )


class TestUnstableSort:
    def test_np_sort_default_kind(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def order(values: FloatArray) -> FloatArray:
                        return np.sort(values)
                    """
                )
            )
            == ["RPR404"]
        )

    def test_np_argsort_default_kind(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def ranks(values: FloatArray):
                        return np.argsort(values)
                    """
                )
            )
            == ["RPR404"]
        )

    def test_stable_kind_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def order(values: FloatArray) -> FloatArray:
                        return np.sort(values, kind="stable")
                    """
                )
            )
            == []
        )

    def test_argsort_method_on_array(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def ranks(values: FloatArray):
                        return values.argsort()
                    """
                )
            )
            == ["RPR404"]
        )

    def test_list_sort_is_already_stable(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def order(items):
                        ordered = list(items)
                        ordered.sort()
                        return ordered
                    """
                )
            )
            == []
        )


class TestInPlaceParamMutation:
    def test_subscript_store_through_param(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def clamp(values: FloatArray) -> FloatArray:
                        values[0] = 0.0
                        return values
                    """
                )
            )
            == ["RPR405"]
        )

    def test_store_through_view_alias(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def clamp(values: FloatArray) -> FloatArray:
                        flat = values.reshape(-1)
                        flat[0] = 0.0
                        return values
                    """
                )
            )
            == ["RPR405"]
        )

    def test_out_kwarg_targets_param(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def bump(values: FloatArray) -> FloatArray:
                        np.add(values, 1.0, out=values)
                        return values
                    """
                )
            )
            == ["RPR405"]
        )

    def test_inplace_method_on_param(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    def reset(values: FloatArray) -> None:
                        values.fill(0.0)
                    """
                )
            )
            == ["RPR405"]
        )

    def test_docstring_contract_opts_out(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    '''
                    def reset(values: FloatArray) -> None:
                        """Zero the buffer in place (caller owns it)."""
                        values.fill(0.0)
                    '''
                )
            )
            == []
        )

    def test_local_array_stores_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def build(n: int) -> FloatArray:
                        out = np.zeros(n, dtype=np.float64)
                        out[0] = 1.0
                        return out
                    """
                )
            )
            == []
        )

    def test_self_attribute_stores_allowed(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    class Box:
                        def put(self, x: float) -> None:
                            self.slots[0] = x
                    """
                )
            )
            == []
        )


class TestSuppression:
    def test_doctrine_finding_is_suppressible(self, codes_in):
        assert (
            codes_in(
                doctrine(
                    """
                    import numpy as np

                    def envelope(values: FloatArray) -> FloatArray:
                        return np.cos(values)  # repro-lint: disable=RPR402 -- verified against libm
                    """
                )
            )
            == []
        )
