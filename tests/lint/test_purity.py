"""Taint analysis, manifest parsing, and certification (RPR5xx core)."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths
from repro.lint.engine import LintError, _parse_module
from repro.lint.purity import (
    PurityClass,
    PurityManifest,
    Taint,
    analyze,
    certify,
    explain_chain,
    explain_cli,
    format_chain,
    parse_manifest,
    ref_matches,
)
from repro.lint.purity import _check_purity_coverage

REPO_ROOT = Path(__file__).resolve().parents[2]


def mod(display, source):
    ctx, _extras = _parse_module(
        Path(display), Path("."), textwrap.dedent(source)
    )
    assert ctx is not None, f"fixture {display} failed to parse"
    return ctx


def analysis_of(*pairs):
    return analyze([mod(display, src) for display, src in pairs])


def closure_taints(analysis, key):
    return analysis.closure.get(key, frozenset())


TAINTED_MODULE = (
    "src/pkg/t.py",
    """
    import os
    import random
    import time

    _CACHE = {}
    _ITEMS = []

    def wall():
        return time.time()

    def rand():
        return random.random()

    def env():
        return os.environ["HOME"]

    def fs(path):
        with open(path) as handle:
            return handle.read()

    def unordered():
        return [value for value in {1, 2, 3}]

    def ident(x):
        return id(x)

    def remember(key, value):
        _CACHE[key] = value

    def push(x):
        _ITEMS.append(x)

    def rebind():
        global _COUNT
        _COUNT = 1
    """,
)


class TestDirectTaints:
    @pytest.mark.parametrize(
        ("qualname", "taint"),
        [
            ("wall", Taint.WALL_CLOCK),
            ("rand", Taint.RANDOMNESS),
            ("env", Taint.ENV_FILESYSTEM),
            ("fs", Taint.ENV_FILESYSTEM),
            ("unordered", Taint.UNORDERED),
            ("ident", Taint.IDENTITY),
            ("remember", Taint.GLOBAL_MUTATION),
            ("push", Taint.GLOBAL_MUTATION),
            ("rebind", Taint.GLOBAL_MUTATION),
        ],
    )
    def test_taint_detected(self, qualname, taint):
        analysis = analysis_of(TAINTED_MODULE)
        key = f"src/pkg/t.py::{qualname}"
        assert taint in {site.taint for site in analysis.direct[key]}, (
            qualname,
            analysis.direct[key],
        )

    def test_unseeded_default_rng_flagged(self):
        analysis = analysis_of(
            (
                "src/pkg/r.py",
                """
                import numpy as np

                def fresh():
                    return np.random.default_rng()

                def seeded():
                    return np.random.default_rng(1234)
                """,
            )
        )
        assert Taint.RANDOMNESS in closure_taints(
            analysis, "src/pkg/r.py::fresh"
        )
        assert not closure_taints(analysis, "src/pkg/r.py::seeded")

    def test_local_shadow_is_not_global_mutation(self):
        analysis = analysis_of(
            (
                "src/pkg/s.py",
                """
                _ITEMS = []

                def local_copy():
                    _ITEMS = []
                    _ITEMS.append(1)
                    return _ITEMS
                """,
            )
        )
        assert not closure_taints(analysis, "src/pkg/s.py::local_copy")


class TestFixedPoint:
    def test_taint_propagates_up_call_chain(self):
        analysis = analysis_of(
            (
                "src/pkg/chain.py",
                """
                import time

                def leaf():
                    return time.time()

                def mid():
                    return leaf()

                def root():
                    return mid()
                """,
            )
        )
        for qualname in ("leaf", "mid", "root"):
            key = f"src/pkg/chain.py::{qualname}"
            assert closure_taints(analysis, key) == frozenset(
                {Taint.WALL_CLOCK}
            ), qualname

    def test_mutual_recursion_converges(self):
        analysis = analysis_of(
            (
                "src/pkg/m.py",
                """
                import time

                def even(n):
                    return True if n == 0 else odd(n - 1)

                def odd(n):
                    if n == 17:
                        return time.time() > 0
                    return even(n - 1)
                """,
            )
        )
        assert closure_taints(analysis, "src/pkg/m.py::even") == frozenset(
            {Taint.WALL_CLOCK}
        )

    def test_cross_module_propagation(self):
        analysis = analysis_of(
            (
                "src/pkg/a.py",
                """
                import os

                def read_env():
                    return os.environ.get("HOME")
                """,
            ),
            (
                "src/pkg/b.py",
                """
                from pkg.a import read_env

                def run():
                    return read_env()
                """,
            ),
        )
        assert Taint.ENV_FILESYSTEM in closure_taints(
            analysis, "src/pkg/b.py::run"
        )


class TestClassification:
    def test_pure_deterministic_effectful(self):
        analysis = analysis_of(
            (
                "src/pkg/c.py",
                """
                import time

                _TABLE = {"a": 1}

                def pure(x):
                    return x + 1

                def reads_state(key):
                    return _TABLE[key]

                def effectful():
                    return time.time()
                """,
            )
        )
        cls = analysis.classification
        assert cls["src/pkg/c.py::pure"] is PurityClass.PURE
        assert cls["src/pkg/c.py::reads_state"] is PurityClass.DETERMINISTIC
        assert cls["src/pkg/c.py::effectful"] is PurityClass.EFFECTFUL

    def test_state_read_propagates_to_callers(self):
        analysis = analysis_of(
            (
                "src/pkg/c.py",
                """
                _TABLE = {"a": 1}

                def reads_state(key):
                    return _TABLE[key]

                def caller(key):
                    return reads_state(key)
                """,
            )
        )
        assert (
            analysis.classification["src/pkg/c.py::caller"]
            is PurityClass.DETERMINISTIC
        )


class TestManifestParsing:
    def test_sections_and_arrays(self):
        manifest = parse_manifest(
            textwrap.dedent(
                """
                # top comment
                [hash-closure]
                roots = ["a.py::f", "b.py::g"]  # trailing comment

                [atomic-writers]
                allow = [
                    "c.py::h",  # multi-line entry
                    "d.py::i",
                ]

                [workers]
                functions = []
                """
            )
        )
        assert manifest.hash_closure_roots == ("a.py::f", "b.py::g")
        assert manifest.atomic_allow == ("c.py::h", "d.py::i")
        assert manifest.worker_functions == ()

    def test_hash_inside_string_survives(self):
        manifest = parse_manifest(
            '[hash-closure]\nroots = ["a.py::f#weird"]\n'
        )
        assert manifest.hash_closure_roots == ("a.py::f#weird",)

    def test_bare_line_rejected(self):
        with pytest.raises(LintError, match="unsupported manifest line"):
            parse_manifest("[hash-closure]\nnot a key value pair\n")

    def test_non_array_value_rejected(self):
        with pytest.raises(LintError, match="must be a string array"):
            parse_manifest('[hash-closure]\nroots = "a.py::f"\n')

    def test_unquoted_item_rejected(self):
        with pytest.raises(LintError, match="double-quoted"):
            parse_manifest("[hash-closure]\nroots = [a.py::f]\n")

    def test_checked_in_manifest_parses(self):
        manifest = parse_manifest(
            (REPO_ROOT / "purity-roots.toml").read_text(encoding="utf-8")
        )
        assert "repro/serialization.py::canonical_value" in (
            manifest.hash_closure_roots
        )
        assert manifest.worker_functions


class TestRefMatches:
    def test_suffix_and_exact(self):
        assert ref_matches("repro/a.py::f", "src/repro/a.py", "f")
        assert ref_matches("src/repro/a.py::f", "src/repro/a.py", "f")
        assert not ref_matches("repro/a.py::f", "src/repro/a.py", "g")
        assert not ref_matches("pro/a.py::f", "src/repro/a.py", "f")
        assert not ref_matches("no-separator", "src/repro/a.py", "f")


class TestCertify:
    def test_clean_root_certified(self):
        analysis = analysis_of(
            (
                "src/pkg/clean.py",
                """
                def helper(x):
                    return x * 2

                def root(x):
                    return helper(x) + 1
                """,
            )
        )
        manifest = PurityManifest(
            path=None, hash_closure_roots=("pkg/clean.py::root",)
        )
        report = certify(analysis, manifest)
        assert report.ok
        assert report.certified_refs == ("pkg/clean.py::root",)
        assert "certified" in report.format_text()

    def test_tainted_root_fails(self):
        analysis = analysis_of(
            (
                "src/pkg/dirty.py",
                """
                import time

                def helper():
                    return time.time()

                def root():
                    return helper()
                """,
            )
        )
        manifest = PurityManifest(
            path=None, hash_closure_roots=("pkg/dirty.py::root",)
        )
        report = certify(analysis, manifest)
        assert not report.ok
        assert report.certified_refs == ()
        text = report.format_text()
        assert "TAINTED" in text
        assert "NOT certified" in text

    def test_unresolved_root_fails(self):
        analysis = analysis_of(("src/pkg/x.py", "def f():\n    return 1\n"))
        manifest = PurityManifest(
            path=None, hash_closure_roots=("pkg/missing.py::f",)
        )
        report = certify(analysis, manifest)
        assert not report.ok
        assert "UNRESOLVED" in report.format_text()

    def test_json_rendering_round_trips(self):
        import json

        analysis = analysis_of(("src/pkg/x.py", "def f():\n    return 1\n"))
        manifest = PurityManifest(
            path=None, hash_closure_roots=("pkg/x.py::f",)
        )
        payload = json.loads(certify(analysis, manifest).to_json())
        assert payload["ok"] is True
        assert payload["roots"][0]["resolved"] == "src/pkg/x.py::f"


class TestExplainChain:
    def test_chain_reaches_taint_site(self):
        analysis = analysis_of(
            (
                "src/pkg/chain.py",
                """
                import time

                def leaf():
                    return time.time()

                def mid():
                    return leaf()

                def root():
                    return mid()
                """,
            )
        )
        chain, site = explain_chain(
            analysis,
            "src/pkg/chain.py::root",
            frozenset({Taint.WALL_CLOCK}),
        )
        assert chain == [
            "src/pkg/chain.py::root",
            "src/pkg/chain.py::mid",
            "src/pkg/chain.py::leaf",
        ]
        assert site is not None and site.taint is Taint.WALL_CLOCK
        rendered = format_chain(analysis, chain, site)
        assert "(root)" in rendered
        assert "taint: wall-clock read `time.time()`" in rendered

    def test_clean_closure_returns_no_site(self):
        analysis = analysis_of(
            ("src/pkg/clean.py", "def root():\n    return 1\n")
        )
        chain, site = explain_chain(
            analysis,
            "src/pkg/clean.py::root",
            frozenset({Taint.WALL_CLOCK}),
        )
        assert chain == ["src/pkg/clean.py::root"]
        assert site is None


# ---------------------------------------------------------------------------
# Mutation test: injecting a wall-clock read into the real serialization
# module must trip RPR501 on the checked-in hash-closure boundary.
# ---------------------------------------------------------------------------

_INJECTION_ANCHOR = (
    '"""Coerce numpy scalars and non-finite floats into JSON-safe '
    'values."""\n'
)


def _build_tree(tmp_path, inject):
    """Copy the real serialization module into a throwaway lint tree."""
    source = (REPO_ROOT / "src" / "repro" / "serialization.py").read_text(
        encoding="utf-8"
    )
    if inject:
        assert _INJECTION_ANCHOR in source, (
            "injection anchor drifted; update the mutation test"
        )
        source = source.replace(
            _INJECTION_ANCHOR,
            _INJECTION_ANCHOR + "    import time\n    _ = time.time()\n",
            1,
        )
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "serialization.py").write_text(source, encoding="utf-8")
    (tmp_path / "purity-roots.toml").write_text(
        '[hash-closure]\nroots = ["repro/serialization.py::canonical_value"]\n',
        encoding="utf-8",
    )
    return tmp_path / "src"


def _closure_rules():
    return [rule for rule in all_rules() if rule.code.startswith("RPR50")]


class TestMutation:
    def test_pristine_serialization_is_certified(self, tmp_path):
        report = lint_paths([_build_tree(tmp_path, inject=False)],
                            rules=_closure_rules())
        assert report.ok, "\n" + report.format_text()

    def test_injected_wall_clock_trips_rpr501(self, tmp_path):
        report = lint_paths([_build_tree(tmp_path, inject=True)],
                            rules=_closure_rules())
        codes = {diag.code for diag in report.diagnostics}
        assert "RPR501" in codes, "\n" + report.format_text()
        message = next(
            diag.message
            for diag in report.diagnostics
            if diag.code == "RPR501"
        )
        assert "canonical_value" in message
        assert "wall-clock" in message
        assert "--explain-path" in message


class TestCoverageGate:
    def test_certified_tree_passes(self, tmp_path, capsys):
        _build_tree(tmp_path, inject=False)
        assert _check_purity_coverage(str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "covers all 1 hash-closure root(s)" in out

    def test_tainted_tree_fails(self, tmp_path, capsys):
        _build_tree(tmp_path, inject=True)
        assert _check_purity_coverage(str(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "not certified deterministic" in out

    def test_missing_manifest_fails(self, tmp_path, capsys):
        assert _check_purity_coverage(str(tmp_path)) == 1
        assert "no purity-roots.toml" in capsys.readouterr().out


class TestExplainCli:
    def test_chain_printed_for_injected_taint(self, tmp_path, capsys):
        tree = _build_tree(tmp_path, inject=True)
        code = explain_cli(
            "RPR501:repro/serialization.py::canonical_value", [tree]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "(root)" in out
        assert "taint: wall-clock read" in out

    def test_clean_closure_exits_zero(self, tmp_path, capsys):
        tree = _build_tree(tmp_path, inject=False)
        code = explain_cli(
            "RPR501:repro/serialization.py::canonical_value", [tree]
        )
        assert code == 0
        assert "closure is clean for RPR501" in capsys.readouterr().out

    def test_bare_qualname_resolves(self, tmp_path, capsys):
        tree = _build_tree(tmp_path, inject=True)
        assert explain_cli("RPR501:canonical_value", [tree]) == 1
        capsys.readouterr()

    def test_bad_spec_rejected(self, tmp_path):
        tree = _build_tree(tmp_path, inject=False)
        with pytest.raises(LintError, match="expects CODE:FUNC"):
            explain_cli("RPR999:whatever", [tree])

    def test_unknown_function_rejected(self, tmp_path):
        tree = _build_tree(tmp_path, inject=False)
        with pytest.raises(LintError, match="no function named"):
            explain_cli("RPR501:does_not_exist", [tree])
