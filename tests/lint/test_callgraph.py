"""Corner cases of the cross-module call graph (RPR5xx foundation)."""

import textwrap
from pathlib import Path

from repro.lint.callgraph import build_call_graph, module_dotted_name
from repro.lint.engine import _parse_module


def mod(display, source):
    ctx, _extras = _parse_module(
        Path(display), Path("."), textwrap.dedent(source)
    )
    assert ctx is not None, f"fixture {display} failed to parse"
    return ctx


def graph_of(*pairs):
    return build_call_graph([mod(display, src) for display, src in pairs])


def edge_kind(graph, caller, callee):
    edge = graph.edges.get(caller, {}).get(callee)
    return None if edge is None else edge.kind


class TestModuleDottedName:
    def test_src_prefix_stripped(self):
        assert (
            module_dotted_name("src/repro/runtime/journal.py")
            == "repro.runtime.journal"
        )

    def test_package_init_maps_to_package(self):
        assert module_dotted_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_backslashes_normalized(self):
        assert module_dotted_name("src\\pkg\\mod.py") == "pkg.mod"


class TestDirectCalls:
    def test_same_module_call(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                """
                def helper():
                    return 1

                def run():
                    return helper()
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/a.py::run", "src/pkg/a.py::helper")
            == "call"
        )

    def test_from_import_cross_module(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                """
                def helper():
                    return 1
                """,
            ),
            (
                "src/pkg/b.py",
                """
                from pkg.a import helper

                def run():
                    return helper()
                """,
            ),
        )
        assert (
            edge_kind(graph, "src/pkg/b.py::run", "src/pkg/a.py::helper")
            == "call"
        )

    def test_import_as_dotted_call(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                """
                def helper():
                    return 1
                """,
            ),
            (
                "src/pkg/b.py",
                """
                import pkg.a as m

                def run():
                    return m.helper()
                """,
            ),
        )
        assert (
            edge_kind(graph, "src/pkg/b.py::run", "src/pkg/a.py::helper")
            == "call"
        )

    def test_relative_import(self):
        graph = graph_of(
            (
                "src/pkg/a.py",
                """
                def helper():
                    return 1
                """,
            ),
            (
                "src/pkg/b.py",
                """
                from .a import helper

                def run():
                    return helper()
                """,
            ),
        )
        assert (
            edge_kind(graph, "src/pkg/b.py::run", "src/pkg/a.py::helper")
            == "call"
        )


class TestMethodResolution:
    def test_self_method_and_base_class(self):
        graph = graph_of(
            (
                "src/pkg/c.py",
                """
                class Base:
                    def shared(self):
                        return 1

                class Child(Base):
                    def helper(self):
                        return 2

                    def decide(self):
                        return self.shared() + self.helper()
                """,
            )
        )
        decide = "src/pkg/c.py::Child.decide"
        assert edge_kind(graph, decide, "src/pkg/c.py::Child.helper") == "call"
        assert edge_kind(graph, decide, "src/pkg/c.py::Base.shared") == "call"

    def test_receiver_type_from_constructor(self):
        graph = graph_of(
            (
                "src/pkg/c.py",
                """
                class Engine:
                    def step(self):
                        return 1

                def run():
                    engine = Engine()
                    return engine.step()
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/c.py::run", "src/pkg/c.py::Engine.step")
            == "call"
        )

    def test_receiver_type_from_annotation(self):
        graph = graph_of(
            (
                "src/pkg/c.py",
                """
                class Engine:
                    def step(self):
                        return 1

                def run(engine: Engine):
                    return engine.step()
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/c.py::run", "src/pkg/c.py::Engine.step")
            == "call"
        )

    def test_builtin_method_names_never_fall_back(self):
        """``d.items()`` must not resolve to a project ``items`` method."""
        graph = graph_of(
            (
                "src/pkg/c.py",
                """
                class Registry:
                    def items(self):
                        return []

                def run(d):
                    return d.items()
                """,
            )
        )
        assert (
            edge_kind(
                graph, "src/pkg/c.py::run", "src/pkg/c.py::Registry.items"
            )
            is None
        )

    def test_unique_project_method_falls_back(self):
        graph = graph_of(
            (
                "src/pkg/c.py",
                """
                class Registry:
                    def lookup(self):
                        return []

                def run(d):
                    return d.lookup()
                """,
            )
        )
        assert (
            edge_kind(
                graph, "src/pkg/c.py::run", "src/pkg/c.py::Registry.lookup"
            )
            == "call"
        )


class TestIndirectReferences:
    def test_functools_partial(self):
        graph = graph_of(
            (
                "src/pkg/p.py",
                """
                from functools import partial

                def worker(x):
                    return x

                def run():
                    return partial(worker, 1)
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/p.py::run", "src/pkg/p.py::worker")
            == "partial"
        )

    def test_decorator_edge(self):
        graph = graph_of(
            (
                "src/pkg/d.py",
                """
                def deco(fn):
                    return fn

                @deco
                def target():
                    return 1
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/d.py::target", "src/pkg/d.py::deco")
            == "decorator"
        )

    def test_bare_name_callback_ref(self):
        graph = graph_of(
            (
                "src/pkg/r.py",
                """
                def callback(x):
                    return x

                def run(items):
                    return sorted(items, key=callback)
                """,
            )
        )
        assert (
            edge_kind(graph, "src/pkg/r.py::run", "src/pkg/r.py::callback")
            == "ref"
        )

    def test_submit_records_worker(self):
        graph = graph_of(
            (
                "src/pkg/s.py",
                """
                def work(x):
                    return x

                def run(pool):
                    return pool.submit(work, 3)
                """,
            )
        )
        assert "src/pkg/s.py::work" in graph.submitted
        assert (
            edge_kind(graph, "src/pkg/s.py::run", "src/pkg/s.py::work")
            == "submit"
        )


class TestNestedAndCycles:
    def test_nested_def_contains_edge_and_closure(self):
        graph = graph_of(
            (
                "src/pkg/n.py",
                """
                def helper():
                    return 1

                def outer():
                    def inner():
                        return helper()
                    return inner
                """,
            )
        )
        outer = "src/pkg/n.py::outer"
        inner = "src/pkg/n.py::outer.inner"
        assert edge_kind(graph, outer, inner) == "contains"
        assert edge_kind(graph, inner, "src/pkg/n.py::helper") == "call"
        assert "src/pkg/n.py::helper" in graph.reachable([outer])

    def test_mutual_recursion_terminates(self):
        graph = graph_of(
            (
                "src/pkg/m.py",
                """
                def even(n):
                    return n == 0 or odd(n - 1)

                def odd(n):
                    return n != 0 and even(n - 1)
                """,
            )
        )
        reached = graph.reachable(["src/pkg/m.py::even"])
        assert reached == {"src/pkg/m.py::even", "src/pkg/m.py::odd"}

    def test_shortest_path(self):
        graph = graph_of(
            (
                "src/pkg/p.py",
                """
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root():
                    return mid() + leaf()
                """,
            )
        )
        chain = graph.path("src/pkg/p.py::root", "src/pkg/p.py::leaf")
        assert chain is not None
        assert [edge.callee for edge in chain] == ["src/pkg/p.py::leaf"]


class TestRegistryDispatch:
    def test_make_scheduler_fans_out(self):
        graph = graph_of(
            (
                "src/pkg/registry.py",
                """
                def make_scheduler(name):
                    return None

                def run(name):
                    return make_scheduler(name)
                """,
            ),
            (
                "src/pkg/sched.py",
                """
                class FooScheduler:
                    def __init__(self):
                        self.state = 0

                    def decide(self):
                        return 0
                """,
            ),
        )
        run = "src/pkg/registry.py::run"
        init = "src/pkg/sched.py::FooScheduler.__init__"
        decide = "src/pkg/sched.py::FooScheduler.decide"
        assert edge_kind(graph, run, init) == "dispatch"
        assert edge_kind(graph, run, decide) == "dispatch"


class TestResolveRef:
    def test_suffix_and_exact_match(self):
        graph = graph_of(
            (
                "src/repro/a.py",
                """
                def helper():
                    return 1
                """,
            )
        )
        key = "src/repro/a.py::helper"
        assert graph.resolve_ref("repro/a.py::helper") == key
        assert graph.resolve_ref("src/repro/a.py::helper") == key
        assert graph.resolve_ref("repro/missing.py::helper") is None
        assert graph.resolve_ref("repro/a.py::missing") is None
        assert graph.resolve_ref("no-separator") is None

    def test_unresolved_calls_recorded(self):
        graph = graph_of(
            (
                "src/pkg/u.py",
                """
                import numpy as np

                def run(values):
                    return np.asarray(values)
                """,
            )
        )
        names = [
            name for name, _ in graph.unresolved.get("src/pkg/u.py::run", [])
        ]
        assert "np.asarray" in names
