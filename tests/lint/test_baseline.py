"""Baseline/ratchet semantics: fail on regressions, never on progress."""

import json

import pytest

from repro.lint import Baseline, LintError
from repro.lint.engine import ENGINE_VERSION, Diagnostic, LintReport


def _diag(path="src/repro/a.py", line=10, code="RPR101", message="m"):
    return Diagnostic(path=path, line=line, col=1, code=code, message=message)


def _report(diags, suppressions=0):
    return LintReport(
        diagnostics=list(diags),
        files_checked=1,
        suppression_count=suppressions,
    )


class TestComparison:
    def test_identical_report_is_clean(self):
        report = _report([_diag()], suppressions=2)
        comparison = Baseline.from_report(report).compare(report)
        assert comparison.ok
        assert comparison.new == ()
        assert comparison.fixed_count == 0

    def test_new_finding_fails(self):
        baseline = Baseline.from_report(_report([_diag()]))
        fresh = _report([_diag(), _diag(code="RPR102")])
        comparison = baseline.compare(fresh)
        assert not comparison.ok
        assert [d.code for d in comparison.new] == ["RPR102"]

    def test_line_drift_does_not_fail(self):
        # Fingerprints exclude the line: an unrelated edit that shifts a
        # finding down the file is not a regression.
        baseline = Baseline.from_report(_report([_diag(line=10)]))
        assert baseline.compare(_report([_diag(line=99)])).ok

    def test_second_identical_finding_is_new(self):
        # ... but the fingerprints form a multiset: a *second* identical
        # comparison in the same file is a new finding.
        baseline = Baseline.from_report(_report([_diag(line=10)]))
        fresh = _report([_diag(line=10), _diag(line=11)])
        comparison = baseline.compare(fresh)
        assert not comparison.ok
        assert len(comparison.new) == 1

    def test_fixed_findings_are_progress_not_failure(self):
        baseline = Baseline.from_report(
            _report([_diag(), _diag(code="RPR102")])
        )
        comparison = baseline.compare(_report([_diag()]))
        assert comparison.ok
        assert comparison.fixed_count == 1
        assert "no longer occur" in comparison.format_text()

    def test_suppression_growth_fails(self):
        baseline = Baseline.from_report(_report([], suppressions=3))
        comparison = baseline.compare(_report([], suppressions=4))
        assert not comparison.ok
        assert "suppression count grew" in comparison.format_text()

    def test_suppression_decrease_is_fine(self):
        baseline = Baseline.from_report(_report([], suppressions=3))
        assert baseline.compare(_report([], suppressions=1)).ok


class TestPersistence:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_report(
            _report([_diag(), _diag()], suppressions=5)
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        assert Baseline.load(path) == baseline

    def test_counts_survive_serialization(self, tmp_path):
        baseline = Baseline.from_report(_report([_diag(), _diag()]))
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        comparison = loaded.compare(_report([_diag(), _diag()]))
        assert comparison.ok

    def test_malformed_json_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="not valid JSON"):
            Baseline.load(path)

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"baseline_format": 99}))
        with pytest.raises(LintError, match="baseline format"):
            Baseline.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LintError, match="cannot read"):
            Baseline.load(tmp_path / "nope.json")


class TestCompatibility:
    def test_stale_engine_version_raises(self):
        baseline = Baseline.from_report(_report([]))
        stale = Baseline(
            engine_version="0.0.1",
            ruleset=baseline.ruleset,
            counts={},
            suppression_count=0,
        )
        with pytest.raises(LintError, match="regenerate"):
            stale.compare(_report([]))

    def test_foreign_ruleset_raises(self):
        stale = Baseline(
            engine_version=ENGINE_VERSION,
            ruleset=("RPR001",),
            counts={},
            suppression_count=0,
        )
        with pytest.raises(LintError, match="rule set"):
            stale.compare(_report([]))
