"""Tolerant-comparison rule family (RPR101, RPR102)."""

from repro.lint.naming import Dimension, infer_dimension


class TestDimensionInference:
    def test_exact_time_names(self):
        for name in ("now", "deadline", "duration", "t0", "wcet"):
            assert infer_dimension(name) is Dimension.TIME

    def test_suffix_conventions(self):
        assert infer_dimension("harvest_power") is Dimension.POWER
        assert infer_dimension("predict_energy") is Dimension.ENERGY
        assert infer_dimension("switch_to_max_at") is Dimension.TIME
        assert infer_dimension("fade_rate") is Dimension.POWER

    def test_private_prefix_is_stripped(self):
        assert infer_dimension("_spike_power") is Dimension.POWER

    def test_dimensionless_vocabulary(self):
        assert infer_dimension("speed") is Dimension.DIMENSIONLESS
        assert infer_dimension("miss_rate") is Dimension.DIMENSIONLESS
        assert infer_dimension("charge_efficiency") is Dimension.DIMENSIONLESS

    def test_predicates_and_helpers_are_unknown(self):
        assert infer_dimension("is_empty") is Dimension.UNKNOWN
        assert infer_dimension("time_to_empty") is Dimension.UNKNOWN
        assert infer_dimension("total_drawn") is Dimension.UNKNOWN

    def test_unmatched_names_are_unknown(self):
        assert infer_dimension("widget") is Dimension.UNKNOWN


class TestLiteralComparison:
    def test_duration_eq_zero_flagged(self, codes_in):
        assert "RPR101" in codes_in("done = duration == 0.0\n")

    def test_energy_le_literal_flagged(self, codes_in):
        assert "RPR101" in codes_in("low = energy <= 0.5\n")

    def test_call_result_dimension_flagged(self, codes_in):
        assert "RPR101" in codes_in(
            "ok = outlook.predict_energy(a, b) <= 0.0\n"
        )

    def test_unknown_names_clean(self, codes_in):
        assert codes_in("flag = widget == 0.0\n") == []

    def test_int_literal_validation_idiom_clean(self, codes_in):
        assert codes_in("bad = duration < 0\n") == []

    def test_epsilon_marked_comparison_clean(self, codes_in):
        assert codes_in("empty = energy <= EPSILON\n") == []
        assert codes_in("empty = stored <= self.eps\n") == []

    def test_infinity_comparison_clean(self, codes_in):
        assert codes_in("never = deadline == INFINITY\n") == []
        assert codes_in("never = deadline == math.inf\n") == []

    def test_message_names_the_predicate(self):
        from repro.lint import lint_source

        report = lint_source("done = duration == 0.0\n")
        assert "time_eq" in report.diagnostics[0].message


class TestPairComparison:
    def test_time_vs_time_flagged(self, codes_in):
        assert "RPR102" in codes_in("late = now > deadline\n")

    def test_energy_vs_energy_flagged(self, codes_in):
        assert "RPR102" in codes_in("short = stored < headroom\n")

    def test_product_side_is_unknown_and_clean(self, codes_in):
        # Multiplication converts units; the checker must not guess the
        # product's dimension.
        assert codes_in("short = energy < power * other\n") == []

    def test_epsilon_exempts_pair(self, codes_in):
        assert codes_in("late = now > deadline + EPSILON\n") == []

    def test_unknown_side_clean(self, codes_in):
        assert codes_in("late = now > widget\n") == []

    def test_is_comparison_ignored(self, codes_in):
        assert codes_in("same = deadline is other_deadline\n") == []

    def test_int_chain_validation_clean(self, codes_in):
        assert codes_in(
            "ok = 1 <= min_duration <= max_duration\n"
        ) == []
