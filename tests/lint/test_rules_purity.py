"""Commit-path (RPR506/507) and worker-boundary (RPR508/509) rules."""

import textwrap

from repro.lint import all_rules, lint_paths


def rules_for(*codes):
    return [rule for rule in all_rules() if rule.code in codes]


class TestAtomicWrite:
    def test_bare_write_open_flagged(self, codes_in):
        assert "RPR506" in codes_in(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        )

    def test_write_text_flagged(self, codes_in):
        assert "RPR506" in codes_in(
            """
            def save(path, text):
                path.write_text(text)
            """
        )

    def test_append_and_exclusive_modes_flagged(self, codes_in):
        for mode in ("a", "x", "wb"):
            codes = codes_in(
                f"""
                def save(path, text):
                    with open(path, {mode!r}) as handle:
                        handle.write(text)
                """
            )
            assert "RPR506" in codes, mode

    def test_read_mode_not_flagged(self, codes_in):
        assert "RPR506" not in codes_in(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()

            def load_explicit(path):
                with open(path, "r") as handle:
                    return handle.read()
            """
        )

    def test_fsyncing_function_exempt(self, codes_in):
        codes = codes_in(
            """
            import os

            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
            """
        )
        assert "RPR506" not in codes

    def test_module_scope_write_flagged(self, codes_in):
        assert "RPR506" in codes_in(
            """
            with open("state.txt", "w") as handle:
                handle.write("boot")
            """
        )

    def test_tests_profile_exempt(self, codes_in):
        codes = codes_in(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            filename="tests/fake_test.py",
        )
        assert "RPR506" not in codes

    def test_allow_list_exempts_function(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "writer.py").write_text(
            textwrap.dedent(
                """
                def legacy_save(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """
            ),
            encoding="utf-8",
        )
        rules = rules_for("RPR506")
        report = lint_paths([pkg], rules=rules)
        assert {diag.code for diag in report.diagnostics} == {"RPR506"}

        (tmp_path / "purity-roots.toml").write_text(
            '[atomic-writers]\nallow = ["pkg/writer.py::legacy_save"]\n',
            encoding="utf-8",
        )
        report = lint_paths([pkg], rules=rules)
        assert report.ok, "\n" + report.format_text()


class TestRenameWithoutFsync:
    def test_bare_replace_flagged(self, codes_in):
        assert "RPR507" in codes_in(
            """
            import os

            def commit(tmp, dst):
                os.replace(tmp, dst)
            """
        )

    def test_bare_rename_flagged(self, codes_in):
        assert "RPR507" in codes_in(
            """
            import os

            def commit(tmp, dst):
                os.rename(tmp, dst)
            """
        )

    def test_fsync_before_rename_exempt(self, codes_in):
        codes = codes_in(
            """
            import os

            def commit(path, text):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            """
        )
        assert "RPR507" not in codes

    def test_string_replace_not_flagged(self, codes_in):
        """``str.replace`` shares the method name but is not a rename."""
        codes = codes_in(
            """
            def normalize(text):
                return text.replace("a", "b")
            """
        )
        assert "RPR507" not in codes


class TestWorkerGlobalMutation:
    def test_submitted_mutator_flagged(self, codes_in):
        codes = codes_in(
            """
            _RESULTS = []

            def work(item):
                _RESULTS.append(item)
                return item

            def run(pool):
                return pool.submit(work, 1)
            """
        )
        assert "RPR508" in codes

    def test_mutation_via_helper_flagged(self, codes_in):
        codes = codes_in(
            """
            _RESULTS = []

            def record(item):
                _RESULTS.append(item)

            def work(item):
                record(item)
                return item

            def run(pool):
                return pool.submit(work, 1)
            """
        )
        assert "RPR508" in codes

    def test_reading_module_constant_allowed(self, codes_in):
        codes = codes_in(
            """
            _SCALE = 2.0

            def work(x):
                return x * _SCALE

            def run(pool):
                return pool.submit(work, 1)
            """
        )
        assert "RPR508" not in codes

    def test_unsubmitted_mutator_not_flagged(self, codes_in):
        codes = codes_in(
            """
            _RESULTS = []

            def work(item):
                _RESULTS.append(item)
                return item
            """
        )
        assert "RPR508" not in codes

    def test_manifest_declared_worker_flagged(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "worker.py").write_text(
            textwrap.dedent(
                """
                _STATE = {}

                def work(item):
                    _STATE[item] = item
                    return item
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "purity-roots.toml").write_text(
            '[workers]\nfunctions = ["pkg/worker.py::work"]\n',
            encoding="utf-8",
        )
        report = lint_paths([pkg], rules=rules_for("RPR508"))
        assert {diag.code for diag in report.diagnostics} == {"RPR508"}


class TestWorkerCapturedRng:
    def test_module_rng_in_worker_flagged(self, codes_in):
        codes = codes_in(
            """
            import numpy as np

            _RNG = np.random.default_rng(1234)

            def work(x):
                return float(_RNG.normal()) + x

            def run(pool):
                return pool.submit(work, 1)
            """
        )
        assert "RPR509" in codes

    def test_per_task_rng_allowed(self, codes_in):
        codes = codes_in(
            """
            import numpy as np

            def work(seed):
                rng = np.random.default_rng(seed)
                return float(rng.normal())

            def run(pool):
                return pool.submit(work, 7)
            """
        )
        assert "RPR509" not in codes

    def test_module_rng_outside_worker_allowed(self, codes_in):
        codes = codes_in(
            """
            import numpy as np

            _RNG = np.random.default_rng(1234)

            def sample():
                return float(_RNG.normal())
            """
        )
        assert "RPR509" not in codes


class TestJobsDeterminism:
    def test_parallel_findings_match_serial(self, tmp_path):
        """``--jobs N`` must produce byte-identical findings."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "one.py").write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n",
            encoding="utf-8",
        )
        (pkg / "two.py").write_text(
            'def save(path, text):\n    with open(path, "w") as handle:\n'
            "        handle.write(text)\n",
            encoding="utf-8",
        )
        (pkg / "three.py").write_text(
            "def clean(x):\n    return x + 1\n", encoding="utf-8"
        )
        serial = lint_paths([pkg], jobs=1)
        parallel = lint_paths([pkg], jobs=2)
        assert serial.diagnostics == parallel.diagnostics
        assert serial.diagnostics, "fixture should produce findings"
        assert (
            serial.stale_suppressions == parallel.stale_suppressions
        )
        assert serial.suppression_count == parallel.suppression_count
