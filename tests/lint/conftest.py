"""Shared helpers for the static-analysis tests."""

import textwrap

import pytest

from repro.lint import lint_source


@pytest.fixture
def codes_in():
    """Lint a snippet and return the sorted list of finding codes."""

    def _codes(snippet: str, filename: str = "src/repro/fake.py") -> list[str]:
        report = lint_source(textwrap.dedent(snippet), filename=filename)
        return sorted(diag.code for diag in report.diagnostics)

    return _codes
