"""SARIF output validation.

The full SARIF 2.1.0 JSON schema is ~7k lines and can't be fetched in a
hermetic test run, so a vendored *subset* is used: it keeps, verbatim,
the structural constraints for everything :func:`repro.lint.to_sarif`
emits (log shell, tool driver + rule metadata, results with physical
locations) and sets ``additionalProperties`` loose, exactly as the real
schema does for result/run objects.  Structural drift — wrong nesting, a
missing required key, a 0-based column — fails here.
"""

import json

import pytest

from repro.lint import ENGINE_VERSION, to_sarif
from repro.lint.engine import Diagnostic, LintReport

jsonschema = pytest.importorskip("jsonschema")

#: Trimmed SARIF 2.1.0 schema (see module docstring).
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": -1,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _report():
    return LintReport(
        diagnostics=[
            Diagnostic(
                path="src/repro/core/ea_dvfs.py",
                line=12,
                col=5,
                code="RPR102",
                message="raw time-to-time comparison",
            ),
            Diagnostic(
                path="src/repro/broken.py",
                line=1,
                col=1,
                code="RPR901",
                message="syntax error: invalid syntax",
            ),
            Diagnostic(
                path="src/repro/sim/batch.py",
                line=160,
                col=17,
                code="RPR403",
                message="int array promotes silently into float arithmetic",
            ),
            Diagnostic(
                path="src/repro/sched/vectorized.py",
                line=140,
                col=1,
                code="RPR410",
                message="`batch_compute_plan` diverged from the pinned "
                "batch float-op sequence of pair 'compute-plan'",
            ),
            Diagnostic(
                path="src/repro/runtime/journal.py",
                line=88,
                col=12,
                code="RPR501",
                message="hash-closure root "
                "`repro/serialization.py::canonical_value` reaches "
                "wall-clock read `time.time()` in `_json_safe`",
            ),
            Diagnostic(
                path="src/repro/energy/trace_io.py",
                line=261,
                col=10,
                code="RPR506",
                message="non-atomic write open(..., 'w') in "
                "`save_power_csv` can leave a torn file after a crash",
            ),
        ],
        stale_suppressions=[
            Diagnostic(
                path="src/repro/energy/predictor.py",
                line=30,
                col=1,
                code="RPR903",
                message="stale suppression: disable=RPR101 matches no "
                "finding from this run",
            ),
        ],
        files_checked=4,
    )


class TestSarif:
    def test_validates_against_schema(self):
        jsonschema.validate(to_sarif(_report()), SARIF_SUBSET_SCHEMA)

    def test_empty_report_validates(self):
        jsonschema.validate(
            to_sarif(LintReport(files_checked=3)), SARIF_SUBSET_SCHEMA
        )

    def test_is_json_serializable(self):
        text = json.dumps(to_sarif(_report()))
        assert json.loads(text)["version"] == "2.1.0"

    def test_driver_identity(self):
        driver = to_sarif(_report())["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == ENGINE_VERSION

    def test_rule_metadata_covers_all_result_rule_ids(self):
        sarif = to_sarif(_report())
        run = sarif["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_result_location_matches_diagnostic(self):
        sarif = to_sarif(_report())
        location = sarif["runs"][0]["results"][0]["locations"][0]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == (
            "src/repro/core/ea_dvfs.py"
        )
        assert physical["region"] == {"startLine": 12, "startColumn": 5}

    def test_engine_pseudo_rules_have_metadata(self):
        rules = to_sarif(_report())["runs"][0]["tool"]["driver"]["rules"]
        ids = {rule["id"] for rule in rules}
        assert {"RPR901", "RPR902", "RPR903"} <= ids

    def test_float_determinism_rules_have_metadata(self):
        rules = to_sarif(_report())["runs"][0]["tool"]["driver"]["rules"]
        by_id = {rule["id"]: rule for rule in rules}
        for code in ("RPR401", "RPR402", "RPR403", "RPR404", "RPR405",
                     "RPR410"):
            assert code in by_id, code
            assert by_id[code]["shortDescription"]["text"]
            assert by_id[code]["defaultConfiguration"]["level"] == "error"

    def test_purity_rules_have_metadata(self):
        rules = to_sarif(_report())["runs"][0]["tool"]["driver"]["rules"]
        by_id = {rule["id"]: rule for rule in rules}
        for code in ("RPR501", "RPR502", "RPR503", "RPR504", "RPR505",
                     "RPR506", "RPR507", "RPR508", "RPR509"):
            assert code in by_id, code
            assert by_id[code]["shortDescription"]["text"]
            assert by_id[code]["defaultConfiguration"]["level"] == "error"

    def test_rpr5xx_results_validate_and_resolve(self):
        sarif = to_sarif(_report())
        jsonschema.validate(sarif, SARIF_SUBSET_SCHEMA)
        run = sarif["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        by_code = {res["ruleId"]: res for res in run["results"]}
        for code in ("RPR501", "RPR506"):
            result = by_code[code]
            assert result["level"] == "error"
            assert rule_ids[result["ruleIndex"]] == code

    def test_rpr4xx_results_validate_and_resolve(self):
        sarif = to_sarif(_report())
        jsonschema.validate(sarif, SARIF_SUBSET_SCHEMA)
        run = sarif["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        by_code = {res["ruleId"]: res for res in run["results"]}
        for code in ("RPR403", "RPR410"):
            result = by_code[code]
            assert result["level"] == "error"
            assert rule_ids[result["ruleIndex"]] == code

    def test_stale_suppressions_emit_note_results(self):
        sarif = to_sarif(_report())
        run = sarif["runs"][0]
        notes = [r for r in run["results"] if r["ruleId"] == "RPR903"]
        assert len(notes) == 1
        assert notes[0]["level"] == "note"
        rules = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
        assert rules["RPR903"]["defaultConfiguration"]["level"] == "note"
