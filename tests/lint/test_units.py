"""Quantity-unit rule family (RPR201, RPR202)."""


class TestMixedAddition:
    def test_energy_plus_power_flagged(self, codes_in):
        assert "RPR201" in codes_in("total = energy + harvest_power\n")

    def test_time_minus_energy_flagged(self, codes_in):
        assert "RPR201" in codes_in("slack = deadline - stored\n")

    def test_same_dimension_addition_clean(self, codes_in):
        assert codes_in("window = deadline - now\n") == []
        assert codes_in("budget = stored + predicted_energy\n") == []

    def test_multiplication_converts_units_clean(self, codes_in):
        # P * t is energy — exactly the conversion eqs. (5)-(9) use.
        assert codes_in("consumed = draw_power * duration\n") == []
        assert codes_in("sr_n = avail_energy / level_power\n") == []

    def test_unknown_operand_clean(self, codes_in):
        assert codes_in("x = energy + widget\n") == []

    def test_dimensionless_operand_clean(self, codes_in):
        # speed is a ratio; adding it to nothing physical is outside the
        # checker's claim.
        assert codes_in("x = speed + utilization\n") == []


class TestMixedComparison:
    def test_time_vs_energy_flagged(self, codes_in):
        assert "RPR202" in codes_in("odd = deadline < stored\n")

    def test_energy_vs_power_flagged(self, codes_in):
        assert "RPR202" in codes_in("odd = energy >= draw_power\n")

    def test_same_dimension_is_not_a_unit_error(self, codes_in):
        codes = codes_in("late = now > deadline\n")
        assert "RPR202" not in codes  # RPR102's territory, not RPR202's

    def test_nested_sum_keeps_dimension(self, codes_in):
        assert "RPR202" in codes_in("odd = (deadline - now) < stored\n")

    def test_epsilon_exempts(self, codes_in):
        assert codes_in("odd = deadline < stored + EPSILON\n") == []
