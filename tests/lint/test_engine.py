"""Engine mechanics: suppressions, output formats, error paths."""

import json

import pytest

from repro.lint import Diagnostic, LintError, all_rules, lint_paths, lint_source
from repro.lint.engine import (
    SYNTAX_ERROR_CODE,
    UNKNOWN_SUPPRESSION_CODE,
    parse_suppressions,
)

VIOLATION = "import random\n"


class TestRegistry:
    def test_rules_are_registered_with_unique_codes(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(codes) == len(set(codes))
        # One representative per family.
        assert "RPR001" in codes  # determinism
        assert "RPR101" in codes  # tolerant comparison
        assert "RPR201" in codes  # quantity units
        assert "RPR301" in codes  # API contracts

    def test_rules_carry_names_and_descriptions(self):
        for rule in all_rules():
            assert rule.name, rule.code
            assert rule.description, rule.code


class TestSuppressions:
    def test_inline_disable_silences_the_code(self):
        clean = lint_source("import random  # repro-lint: disable=RPR001\n")
        assert clean.ok

    def test_inline_disable_with_note(self):
        clean = lint_source(
            "import random  # repro-lint: disable=RPR001 -- demo only\n"
        )
        assert clean.ok

    def test_disable_only_covers_named_codes(self):
        report = lint_source("import random  # repro-lint: disable=RPR002\n")
        assert [d.code for d in report.diagnostics] == ["RPR001"]

    def test_disable_all(self):
        assert lint_source("import random  # repro-lint: disable=all\n").ok

    def test_file_level_disable(self):
        source = (
            "# repro-lint: disable-file=RPR001\n"
            "import random\n"
            "import random\n"
        )
        assert lint_source(source).ok

    def test_unknown_code_in_suppression_is_reported(self):
        report = lint_source("x = 1  # repro-lint: disable=RPR999x\n")
        assert [d.code for d in report.diagnostics] == [
            UNKNOWN_SUPPRESSION_CODE
        ]

    def test_marker_after_other_comment_text(self):
        table, unknown = parse_suppressions(
            "x = 1  # guard; repro-lint: disable=RPR101 -- exact\n"
        )
        assert table.is_suppressed(1, "RPR101")
        assert not unknown


class TestOutput:
    def test_syntax_error_becomes_diagnostic(self):
        report = lint_source("def broken(:\n")
        assert [d.code for d in report.diagnostics] == [SYNTAX_ERROR_CODE]
        assert not report.ok

    def test_text_output_mentions_path_line_and_code(self):
        report = lint_source(VIOLATION, filename="pkg/mod.py")
        text = report.format_text()
        assert "pkg/mod.py:1:1: RPR001" in text
        assert "1 finding(s)" in text

    def test_json_output_round_trips(self):
        report = lint_source(VIOLATION, filename="pkg/mod.py")
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["counts"] == {"RPR001": 1}
        assert payload["findings"][0]["line"] == 1

    def test_clean_report_says_so(self):
        report = lint_source("x = 1\n")
        assert report.ok
        assert "no findings" in report.format_text()

    def test_duplicate_diagnostics_are_collapsed(self):
        # A chained comparison trips the literal rule on both pairs at
        # one position; the report keeps a single finding.
        report = lint_source("ok = 0.5 <= duration <= 1.5\n")
        assert [d.code for d in report.diagnostics] == ["RPR101"]


class TestPaths:
    def test_missing_path_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path / "nope"], root=tmp_path)

    def test_directory_walk_and_relative_display(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text(VIOLATION)
        (pkg / "b.py").write_text("x = 1\n")
        report = lint_paths([pkg], root=tmp_path)
        assert report.files_checked == 2
        assert [d.path for d in report.diagnostics] == ["pkg/a.py"]

    def test_diagnostics_sorted_by_position(self, tmp_path):
        (tmp_path / "z.py").write_text(VIOLATION)
        (tmp_path / "a.py").write_text("import random\nimport random\n")
        report = lint_paths([tmp_path], root=tmp_path)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)

    def test_non_python_files_are_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("import random\n")
        report = lint_paths([tmp_path / "notes.txt"], root=tmp_path)
        assert report.files_checked == 0
        assert report.ok


class TestDiagnostic:
    def test_format_text(self):
        diag = Diagnostic(
            path="a.py", line=3, col=7, code="RPR001", message="boom"
        )
        assert diag.format_text() == "a.py:3:7: RPR001 boom"
