"""Tests for the scalar↔batch parity registry and RPR410.

The load-bearing case is the *mutation* test: take the real vectorized
scheduler module, flip one numpy call in a copy, and assert RPR410
fires — that is the doctrine drift the pin exists to catch.  The pin
freshness test keeps ``_PINNED`` honest against the working tree, so a
kernel edit cannot land without refreshing the pin it invalidates.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.lint import PAIRS, lint_source
from repro.lint import parity
from repro.lint.parity import (
    FunctionRef,
    _first_divergence,
    _load_side,
    extract_fingerprint,
    find_function,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

SCHED_VECTORIZED = REPO_ROOT / "src" / "repro" / "sched" / "vectorized.py"
ENERGY_VECTORIZED = REPO_ROOT / "src" / "repro" / "energy" / "vectorized.py"


def _parse(snippet: str) -> ast.Module:
    return ast.parse(textwrap.dedent(snippet))


def _rpr410(report) -> list:
    return [d for d in report.diagnostics if d.code == "RPR410"]


class TestFingerprint:
    def test_postorder_tokens(self):
        tree = _parse(
            """
            def f(a, b):
                return (a - b) * max(a, b)
            """
        )
        assert extract_fingerprint(tree, "f") == ("sub", "max", "mul")

    def test_scalar_and_batch_spellings_normalize(self):
        scalar = _parse(
            """
            def f(a, b):
                return math.pow(max(a, 0.0), b)
            """
        )
        batch = _parse(
            """
            def f(a, b):
                return _libm_pow(np.maximum(a, 0.0), b)
            """
        )
        assert extract_fingerprint(scalar, "f") == extract_fingerprint(
            batch, "f"
        )

    def test_np_power_fingerprints_differently_from_libm(self):
        simd = _parse(
            """
            def f(a, b):
                return np.power(a, b)
            """
        )
        libm = _parse(
            """
            def f(a, b):
                return _libm_pow(a, b)
            """
        )
        assert extract_fingerprint(simd, "f") != extract_fingerprint(
            libm, "f"
        )

    def test_missing_function_returns_none(self):
        assert extract_fingerprint(_parse("X = 1"), "f") is None

    def test_find_method_inside_class(self):
        tree = _parse(
            """
            class Box:
                def get(self):
                    return 1
            """
        )
        func = find_function(tree, "Box.get")
        assert func is not None and func.name == "get"
        assert find_function(tree, "Box.missing") is None
        assert find_function(tree, "Other.get") is None


class TestRegistry:
    def test_every_referenced_module_exists(self):
        for pair in PAIRS:
            for ref in (pair.scalar, pair.batch):
                assert (REPO_ROOT / "src" / ref.path).exists(), ref

    def test_pins_match_working_tree(self):
        # `--print` output pasted into _PINNED must never go stale: a
        # kernel edit has to refresh the pin in the same commit.
        for pair in PAIRS:
            for side in ("scalar", "batch"):
                ref: FunctionRef = getattr(pair, side)
                actual = _load_side(str(REPO_ROOT), ref)
                assert actual is not None, (pair.name, side)
                assert actual == parity._PINNED[pair.name][side], (
                    pair.name,
                    side,
                )

    def test_suffix_matching_ignores_lint_root(self):
        ref = FunctionRef("repro/timeutils.py", "time_le")
        assert ref.matches_module("repro/timeutils.py")
        assert ref.matches_module("src/repro/timeutils.py")
        assert ref.matches_module("deep/checkout/src/repro/timeutils.py")
        assert not ref.matches_module("repro/other.py")
        assert not ref.matches_module("otherrepro/timeutils.py")


class TestParityRule:
    def test_real_module_is_clean(self):
        report = lint_source(
            SCHED_VECTORIZED.read_text(encoding="utf-8"),
            filename="src/repro/sched/vectorized.py",
        )
        assert _rpr410(report) == []

    def test_mutated_kernel_fires_rpr410(self):
        # The acceptance-criteria demonstration: flip one numpy call in
        # a copy of the real scheduler kernels and the pin must catch it.
        source = SCHED_VECTORIZED.read_text(encoding="utf-8")
        assert "np.maximum(" in source
        mutated = source.replace("np.maximum(", "np.minimum(", 1)
        report = lint_source(
            mutated, filename="src/repro/sched/vectorized.py"
        )
        findings = _rpr410(report)
        assert findings, "pin did not catch the max->min mutation"
        assert any("diverged" in d.message for d in findings)

    def test_missing_registered_function_fires_rpr410(self):
        report = lint_source(
            "X = 1\n", filename="src/repro/energy/vectorized.py"
        )
        findings = _rpr410(report)
        assert findings
        assert all("not found" in d.message for d in findings)

    def test_missing_pin_fires_rpr410(self, monkeypatch):
        monkeypatch.delitem(parity._PINNED["snap-tail"], "batch")
        report = lint_source(
            ENERGY_VECTORIZED.read_text(encoding="utf-8"),
            filename="src/repro/energy/vectorized.py",
        )
        findings = _rpr410(report)
        assert len(findings) == 1
        assert "no pinned fingerprint" in findings[0].message

    def test_unrelated_module_not_checked(self):
        report = lint_source("X = 1\n", filename="src/repro/fake.py")
        assert _rpr410(report) == []


class TestFirstDivergence:
    def test_mismatch(self):
        msg = _first_divergence(("add", "mul"), ("add", "sub"))
        assert "op 1" in msg and "'mul'" in msg and "'sub'" in msg

    def test_extra_op(self):
        assert "extra op at 1" in _first_divergence(("add",), ("add", "mul"))

    def test_missing_op(self):
        assert "missing op at 1" in _first_divergence(("add", "mul"), ("add",))


class TestCli:
    def test_coverage_passes(self, capsys):
        assert main(["--coverage"]) == 0
        out = capsys.readouterr().out
        assert "covers all" in out

    def test_coverage_reaches_every_scheduler(self):
        from repro.sched.vectorized import SCHEDULER_KINDS

        covered = {name for pair in PAIRS for name in pair.covers}
        assert set(SCHEDULER_KINDS) <= covered

    def test_print_emits_pastable_literal(self, capsys):
        assert main(["--print", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("_PINNED")
        assert "'compute-plan': {" in out

    def test_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            main([])
