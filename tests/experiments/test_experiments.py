"""Tests for the experiment harness (scaled-down configurations).

These run real simulations with tiny replication counts and short
horizons, validating the *plumbing* of each experiment; the full-shape
reproduction lives in the benchmark harness (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.experiments.common import PaperSetup, replications, scale_factor
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6_fig7 import run_remaining_energy
from repro.experiments.fig8_fig9 import run_miss_rate_sweep
from repro.experiments.table1 import run_table1
from repro.experiments import EXPERIMENTS, run_experiment


@pytest.fixture
def fast_setup():
    """Short-horizon setup so experiment tests stay quick."""
    return PaperSetup(horizon=1500.0)


class TestPaperSetup:
    def test_mean_harvest_power(self):
        setup = PaperSetup()
        assert setup.mean_harvest_power() == pytest.approx(3.989, abs=0.01)

    def test_paired_seeding(self, fast_setup):
        """Same seed -> identical world across schedulers."""
        a = fast_setup.run("lsa", 0.4, 100.0, seed=3)
        b = fast_setup.run("ea-dvfs", 0.4, 100.0, seed=3)
        assert a.released_count == b.released_count
        assert a.harvested_energy == pytest.approx(b.harvested_energy)

    def test_predictor_kinds(self, fast_setup):
        for kind in ("profile", "oracle", "mean"):
            setup = PaperSetup(horizon=500.0, predictor_kind=kind)
            result = setup.run("ea-dvfs", 0.4, 100.0, seed=0)
            assert result.released_count > 0
        with pytest.raises(ValueError, match="unknown predictor"):
            PaperSetup(predictor_kind="magic").predictor(None)

    def test_factory_signature(self, fast_setup):
        factory = fast_setup.factory(0.4)
        result = factory("lsa", 50.0, 0)
        assert result.scheduler_name == "lsa"

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5
        assert replications(4) == 10
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError, match="numeric"):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()

    def test_replications_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert replications(3) == 1


class TestFig5:
    def test_statistics(self):
        result = run_fig5(horizon=2000.0)
        assert result.times.size == 2000
        assert result.powers.min() >= 0.0
        assert result.mean_power == pytest.approx(result.analytic_mean, rel=0.25)
        assert result.peak_power > result.mean_power

    def test_format_text(self):
        text = run_fig5(horizon=500.0).format_text()
        assert "Figure 5" in text
        assert "mean=" in text


class TestFig6Fig7:
    def test_curves_structure(self, fast_setup):
        result = run_remaining_energy(
            utilization=0.4, figure="Figure 6", setup=fast_setup,
            capacities=(100.0, 500.0), n_sets=2, sample_interval=50.0,
        )
        assert set(result.curves) == {"lsa", "ea-dvfs"}
        for curve in result.curves.values():
            assert curve.shape == result.times.shape
            assert np.all((curve >= 0.0) & (curve <= 1.0 + 1e-9))

    def test_low_utilization_advantage_nonnegative(self, fast_setup):
        result = run_remaining_energy(
            utilization=0.4, figure="Figure 6", setup=fast_setup,
            capacities=(50.0, 150.0), n_sets=3, sample_interval=50.0,
        )
        assert result.advantage >= -0.02  # EA-DVFS stores at least as much

    def test_format_text(self, fast_setup):
        result = run_remaining_energy(
            utilization=0.8, figure="Figure 7", setup=fast_setup,
            capacities=(100.0,), n_sets=1, sample_interval=100.0,
        )
        text = result.format_text()
        assert "Figure 7" in text
        assert "EA-DVFS minus LSA" in text


class TestFig8Fig9:
    def test_sweep_structure(self, fast_setup):
        result = run_miss_rate_sweep(
            utilization=0.4, figure="Figure 8", setup=fast_setup,
            reference_capacity=200.0, fractions=(0.1, 0.5, 1.0), n_sets=3,
        )
        assert result.fractions.shape == (3,)
        assert result.curve("lsa").shape == (3,)
        assert 0.0 <= result.mean_reduction <= 1.0

    def test_miss_rates_decline_with_capacity(self, fast_setup):
        result = run_miss_rate_sweep(
            utilization=0.4, figure="Figure 8", setup=fast_setup,
            reference_capacity=300.0, fractions=(0.05, 1.0), n_sets=4,
        )
        for name in ("lsa", "ea-dvfs"):
            curve = result.curve(name)
            assert curve[-1] <= curve[0] + 1e-9

    def test_unknown_utilization_needs_reference(self, fast_setup):
        with pytest.raises(ValueError, match="reference capacity"):
            run_miss_rate_sweep(
                utilization=0.5, figure="x", setup=fast_setup, n_sets=1,
            )

    def test_format_text(self, fast_setup):
        result = run_miss_rate_sweep(
            utilization=0.4, figure="Figure 8", setup=fast_setup,
            reference_capacity=200.0, fractions=(0.1, 1.0), n_sets=2,
        )
        text = result.format_text()
        assert "Figure 8" in text
        assert "reduction" in text


class TestTable1:
    def test_rows_and_ratios(self, fast_setup):
        result = run_table1(
            setup=fast_setup, utilizations=(0.2, 0.6), n_sets=2,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.cmin_lsa > 0
            assert row.cmin_ea_dvfs > 0
            assert row.ratio == pytest.approx(
                row.cmin_lsa / row.cmin_ea_dvfs
            )
        assert result.ratio(0.2) >= 0.9  # EA-DVFS never needs (much) more

    def test_unknown_utilization_rejected(self, fast_setup):
        result = run_table1(setup=fast_setup, utilizations=(0.2,), n_sets=1)
        with pytest.raises(KeyError):
            result.ratio(0.9)

    def test_format_text(self, fast_setup):
        result = run_table1(setup=fast_setup, utilizations=(0.4,), n_sets=1)
        text = result.format_text()
        assert "Table 1" in text
        assert "paper" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        paper_artifacts = {
            "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "motivation",
        }
        extensions = {"resilience"}
        assert paper_artifacts <= set(EXPERIMENTS)
        assert extensions <= set(EXPERIMENTS)
        # Everything else in the registry is an ablation.
        assert all(
            name in paper_artifacts or name in extensions
            or name.startswith("ablation-")
            for name in EXPERIMENTS
        )

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_motivation_bundle(self):
        bundle = run_experiment("motivation")
        text = bundle.format_text()
        assert "Figure 1" in text
        assert "Figure 3" in text
