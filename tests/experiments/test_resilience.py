"""Tests for the resilience experiment."""

import math

import pytest

from repro.experiments.common import PaperSetup
from repro.experiments.resilience import (
    SCENARIOS,
    ResilienceResult,
    ResilienceSetup,
    run_resilience,
)

FAST = dict(setup=PaperSetup(horizon=600.0), n_sets=1, retries=0)


class TestDeterminism:
    def test_bit_for_bit_reproducible(self):
        # The acceptance criterion: two runs with the same fixed seeds
        # produce identical results, faults and all.
        a = run_resilience(**FAST)
        b = run_resilience(**FAST)
        assert a == b
        assert a.miss_rates == b.miss_rates


class TestStructure:
    def test_grid_is_complete(self):
        result = run_resilience(**FAST)
        assert result.scenarios == SCENARIOS
        assert result.scheduler_names == ("edf", "lsa", "ea-dvfs")
        assert set(result.miss_rates) == {
            (scenario, name)
            for scenario in SCENARIOS
            for name in ("edf", "lsa", "ea-dvfs")
        }
        for rate in result.miss_rates.values():
            assert math.isnan(rate) or 0.0 <= rate <= 1.0
        assert result.failures == ()

    def test_format_text(self):
        result = run_resilience(**FAST)
        text = result.format_text()
        assert "Miss rates under injected faults" in text
        for scenario in SCENARIOS:
            assert scenario in text

    def test_scenario_subset(self):
        result = run_resilience(scenarios=("baseline",), **FAST)
        assert result.scenarios == ("baseline",)
        assert len(result.miss_rates) == 3

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_resilience(scenarios=("baseline", "asteroid"), **FAST)


class TestResilienceSetup:
    def test_fault_flags_change_the_world(self):
        base = ResilienceSetup(horizon=600.0)
        faulted = ResilienceSetup(horizon=600.0, blackout=True, overrun=True)
        clean = base.run("edf", 0.6, 150.0, seed=0)
        stressed = faulted.run("edf", 0.6, 150.0, seed=0)
        # Same seed, same workload sizing — only the faults differ, and
        # they must actually perturb the outcome.
        assert clean.released_count == stressed.released_count
        assert clean.drawn_energy != pytest.approx(stressed.drawn_energy)

    def test_runs_are_watchdogged_by_default(self):
        assert ResilienceSetup().watchdog is True

    def test_failure_record_is_exposed(self):
        # Covered in depth by tests/analysis/test_parallel_salvage.py; the
        # experiment-level contract is just the result field's type.
        assert ResilienceResult(
            utilization=0.6, capacity=150.0, n_sets=0,
            scenarios=("baseline",), scheduler_names=("edf",),
            miss_rates={("baseline", "edf"): math.nan},
        ).failures == ()
