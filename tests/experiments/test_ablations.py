"""Plumbing tests for the ablation experiment runners (tiny scale)."""

import pytest

from repro.experiments.ablations import (
    AblationResult,
    run_aet_ablation,
    run_dvfs_granularity_ablation,
    run_nonideal_storage_ablation,
    run_overflow_aware_ablation,
    run_predictor_ablation,
    run_rectification_ablation,
    run_switch_overhead_ablation,
    run_weather_ablation,
)
from repro.experiments import EXPERIMENTS


pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


class TestAblationResult:
    def test_format_text(self):
        result = AblationResult(
            name="x", header="title:", rows=("a: 1", "b: 2"),
        )
        text = result.format_text()
        assert text.splitlines() == ["title:", "  a: 1", "  b: 2"]


class TestRunnersAtTinyScale:
    """Each runner executes end-to-end with n_sets=1 and returns sane
    metrics; the full-scale shape assertions live in benchmarks/."""

    def test_predictor(self):
        result = run_predictor_ablation(n_sets=1)
        assert set(result.metrics["rates"]) == {"oracle", "profile", "mean"}
        assert all(0 <= r <= 1 for r in result.metrics["rates"].values())

    def test_rectification(self):
        result = run_rectification_ablation(n_sets=1)
        assert set(result.metrics["rates"]) == {"abs", "clamp"}

    def test_switch_overhead(self):
        result = run_switch_overhead_ablation(n_sets=1)
        assert result.metrics["costly"] >= 0
        assert "switches per run" in result.format_text()

    def test_nonideal_storage(self):
        result = run_nonideal_storage_ablation(n_sets=1)
        assert set(result.metrics["rates"]) == {"lsa", "ea-dvfs"}

    def test_dvfs_granularity(self):
        result = run_dvfs_granularity_ablation(n_sets=1)
        assert set(result.metrics["rates"]) == {
            "continuous-32", "xscale-5", "single-speed",
        }

    def test_weather(self):
        result = run_weather_ablation(
            n_sets=1, capacities=(100.0,), horizon=2000.0
        )
        assert 100.0 in result.metrics["rates"]

    def test_overflow_aware(self):
        result = run_overflow_aware_ablation(n_sets=1)
        assert set(result.metrics["rates"]) == {"ea-dvfs", "ea-dvfs-oa"}

    def test_aet(self):
        result = run_aet_ablation(n_sets=1)
        wcet, aet = result.metrics["rates"]["ea-dvfs"]
        assert 0 <= aet <= wcet + 0.2


class TestRegistry:
    def test_all_ablations_registered(self):
        expected = {
            "ablation-predictor",
            "ablation-rectification",
            "ablation-switch-overhead",
            "ablation-nonideal-storage",
            "ablation-dvfs-granularity",
            "ablation-weather",
            "ablation-overflow-aware",
            "ablation-aet",
        }
        assert expected <= set(EXPERIMENTS)
