"""Unit tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.plotting import ascii_histogram, ascii_plot


class TestAsciiPlot:
    def test_renders_basic_series(self):
        chart = ascii_plot({"line": ([0, 1, 2], [0.0, 0.5, 1.0])})
        assert "o = line" in chart
        assert "o" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_plot(
            {
                "a": ([0, 1], [0.0, 1.0]),
                "b": ([0, 1], [1.0, 0.0]),
            }
        )
        assert "o = a" in chart
        assert "x = b" in chart

    def test_title_and_labels(self):
        chart = ascii_plot(
            {"s": ([0, 1], [0, 1])},
            title="My Chart",
            xlabel="time",
            ylabel="y",
        )
        assert "My Chart" in chart
        assert "time" in chart

    def test_y_range_override(self):
        chart = ascii_plot(
            {"s": ([0, 1], [0.4, 0.6])}, y_min=0.0, y_max=1.0
        )
        assert "1" in chart.splitlines()[0]

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError, match="empty"):
            ascii_plot({"s": ([], [])})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            ascii_plot({"s": ([0, 1], [0.0])})

    def test_nonfinite_points_dropped(self):
        chart = ascii_plot({"s": ([0, 1, 2], [0.0, np.nan, 2.0])})
        assert "o = s" in chart

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="no finite"):
            ascii_plot({"s": ([0.0], [np.nan])})

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot({"s": ([0, 1, 2], [5.0, 5.0, 5.0])})
        assert "o" in chart

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            ascii_plot({"s": ([0, 1], [0, 1])}, width=5, height=2)

    def test_dimensions_respected(self):
        chart = ascii_plot({"s": ([0, 1], [0, 1])}, width=30, height=8)
        body_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(body_lines) == 8


class TestAsciiHistogram:
    def test_renders_counts(self):
        text = ascii_histogram([1.0, 1.1, 5.0], bins=2)
        assert "#" in text
        assert "2" in text

    def test_title(self):
        text = ascii_histogram([1.0, 2.0], title="dist")
        assert text.startswith("dist")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
        with pytest.raises(ValueError):
            ascii_histogram([np.nan])

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
