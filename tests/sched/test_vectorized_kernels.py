"""Property tests: vectorized decision kernels vs the scalar oracles.

The batch engine's contract (``docs/batch-simulation.md``) is that every
kernel performs the *same* IEEE float64 operations in the *same* order
as its scalar counterpart, element-wise.  These tests enforce the
contract at the kernel level: random lane vectors are pushed through
:mod:`repro.sched.vectorized` and every lane is re-derived with the
scalar functions (:func:`repro.core.slowdown.compute_plan`, the analytic
oracles of :mod:`repro.verify.oracles`, :func:`repro.timeutils.time_le`)
— comparisons are bit-exact, not approximate.

Also pinned here: the numpy facts the engine's bit-exactness argument
rests on (row-wise ``np.cumsum`` accumulates strictly left to right;
masked ``+ 0.0`` never perturbs a float64 accumulator; ``np.mod``,
``np.nextafter`` and ``astype(int64)`` match their scalar twins; array
``np.power`` does *not* and is banned from the kernels), so a numpy
behaviour change fails loudly instead of silently skewing energies.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slowdown import compute_plan
from repro.cpu.presets import xscale_pxa
from repro.sched.vectorized import (
    SCHED_EA_DVFS,
    SCHED_EA_DVFS_NOSLOWDOWN,
    SCHED_EDF,
    SCHED_LSA,
    SCHEDULER_KINDS,
    batch_compute_plan,
    batch_decide,
    batch_min_feasible_level,
    batch_time_le,
)
from repro.sched.registry import available_schedulers
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask
from repro.timeutils import time_le
from repro.verify.oracles import (
    expected_ea_dvfs_decision,
    expected_lazy_decision,
)

SCALE = xscale_pxa()
SPEEDS = np.asarray([level.speed for level in SCALE.levels])
POWERS = np.asarray([level.power for level in SCALE.levels])


def _tile(row: np.ndarray, n: int) -> np.ndarray:
    return np.tile(row, (n, 1))


# -- lane strategies ------------------------------------------------------

finite_times = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
windows = st.floats(
    min_value=-50.0, max_value=500.0, allow_nan=False, allow_infinity=False
)
works = st.floats(
    min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
)
energies = st.one_of(
    st.floats(
        min_value=-10.0, max_value=2000.0,
        allow_nan=False, allow_infinity=False,
    ),
    st.just(math.inf),
    st.just(0.0),
)

lanes = st.lists(
    st.tuples(finite_times, windows, works, energies),
    min_size=1, max_size=24,
)


class _FixedOutlook:
    """EnergyOutlook stub returning a predetermined available energy."""

    def __init__(self, available: float, full: bool = False) -> None:
        self._available = available
        self.storage_is_full = full

    def available_until(self, now: float, until: float) -> float:
        return self._available


def _job(now: float, deadline: float, work: float) -> Job:
    task = PeriodicTask(period=1000.0, wcet=max(work, 1e-6), name="t0")
    return Job(
        task,
        release=0.0,
        absolute_deadline=deadline,
        wcet=max(work, 1e-6),
    )


# -- batch_compute_plan vs compute_plan -----------------------------------


@settings(max_examples=200, deadline=None)
@given(lanes)
def test_batch_compute_plan_matches_scalar(lane_params):
    n = len(lane_params)
    now = np.asarray([p[0] for p in lane_params])
    deadline = now + np.asarray([p[1] for p in lane_params])
    work = np.asarray([p[2] for p in lane_params])
    energy = np.asarray([p[3] for p in lane_params])
    plan = batch_compute_plan(
        now, deadline, work, energy, _tile(SPEEDS, n), _tile(POWERS, n)
    )
    for i in range(n):
        scalar = compute_plan(
            float(now[i]), float(deadline[i]), float(work[i]),
            float(energy[i]), SCALE,
        )
        level = SCALE.levels[int(plan.level[i])]
        # Bit-exact on purpose: both sides perform identical float64
        # operations, so any difference is a real kernel divergence.
        assert level == scalar.level
        assert plan.s1[i] == scalar.s1  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        assert plan.s2[i] == scalar.s2  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        assert plan.start_at[i] == scalar.start_at  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        if scalar.switch_to_max_at is None:
            assert math.isnan(plan.switch_at[i])
        else:
            assert plan.switch_at[i] == scalar.switch_to_max_at  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        assert bool(plan.sufficient_energy[i]) == scalar.sufficient_energy
        assert bool(plan.deadline_reachable[i]) == scalar.deadline_reachable


@settings(max_examples=100, deadline=None)
@given(lanes)
def test_batch_min_feasible_level_matches_scale(lane_params):
    n = len(lane_params)
    work = np.asarray([p[2] for p in lane_params])
    window = np.asarray([p[1] for p in lane_params])
    index = batch_min_feasible_level(work, window, _tile(SPEEDS, n))
    for i in range(n):
        scalar = SCALE.min_feasible_level(float(work[i]), float(window[i]))
        if scalar is None:
            assert index[i] == -1
        else:
            assert SCALE.levels[int(index[i])] == scalar


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(finite_times, windows), min_size=1, max_size=32))
def test_batch_time_le_matches_scalar(pairs):
    a = np.asarray([p[0] for p in pairs])
    b = a + np.asarray([p[1] for p in pairs])
    result = batch_time_le(a, b)
    for i in range(len(pairs)):
        assert bool(result[i]) == time_le(float(a[i]), float(b[i]))


# -- batch_decide vs the analytic decision oracles ------------------------


@settings(max_examples=200, deadline=None)
@given(
    lanes,
    st.lists(
        st.sampled_from(sorted(SCHEDULER_KINDS.values())),
        min_size=24, max_size=24,
    ),
    st.lists(st.booleans(), min_size=24, max_size=24),
)
def test_batch_decide_matches_decision_oracles(lane_params, kinds, fulls):
    # Scalar deciders require live jobs: positive work, deadline after
    # release.  The deadline-passed and zero-work paths are exercised by
    # the simulator-level equivalence suite instead.
    lane_params = [
        (now, window, work, energy)
        for now, window, work, energy in lane_params
        if window > 1e-6 and work > 1e-6  # repro-lint: disable=RPR101 -- strategy filter, not a semantic compare
    ]
    if not lane_params:
        return
    n = len(lane_params)
    now = np.asarray([p[0] for p in lane_params])
    deadline = now + np.asarray([p[1] for p in lane_params])
    work = np.asarray([p[2] for p in lane_params])
    energy = np.asarray([p[3] for p in lane_params])
    kind = np.asarray(kinds[:n], dtype=np.int64)
    full = np.asarray(fulls[:n], dtype=np.bool_)
    decision = batch_decide(
        kind, now, deadline, work,
        np.where(energy < 0.0, 0.0, energy),  # repro-lint: disable=RPR101 -- exact clamp, mirrors outlooks
        full, _tile(SPEEDS, n), _tile(POWERS, n),
    )
    for i in range(n):
        job = _job(float(now[i]), float(deadline[i]), float(work[i]))
        outlook = _FixedOutlook(
            max(0.0, float(energy[i])), full=bool(full[i])
        )
        if kind[i] == SCHED_EDF:
            expected = None  # always run at max speed
        elif kind[i] == SCHED_EA_DVFS:
            expected = expected_ea_dvfs_decision(
                float(now[i]), job, outlook, SCALE
            )
        else:  # LSA and EA-DVFS-noslowdown share the s2-only rule
            expected = expected_lazy_decision(
                float(now[i]), job, outlook, SCALE
            )
        if expected is None or not expected.is_idle:
            assert bool(decision.run[i]), f"lane {i}: expected run, got idle"
            level = SCALE.levels[int(decision.level[i])]
            if expected is None:
                assert level == SCALE.max_level
            else:
                assert level == expected.level
                if expected.switch_to_max_at is None:
                    assert math.isnan(decision.switch_at[i])
                else:
                    assert decision.switch_at[i] == expected.switch_to_max_at  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        else:
            assert not bool(decision.run[i]), (
                f"lane {i}: expected idle until "
                f"{expected.reconsider_at!r}, got run"
            )
            assert decision.reconsider_at[i] == expected.reconsider_at  # repro-lint: disable=RPR102 -- bit-exact kernel contract


# -- edge cases -----------------------------------------------------------


class TestEdgeCases:
    def test_empty_batch(self):
        empty = np.zeros(0)
        plan = batch_compute_plan(
            empty, empty, empty, empty, np.zeros((0, 5)), np.zeros((0, 5))
        )
        assert plan.level.shape == (0,)
        decision = batch_decide(
            np.zeros(0, dtype=np.int64), empty, empty, empty, empty,
            np.zeros(0, dtype=np.bool_), np.zeros((0, 5)), np.zeros((0, 5)),
        )
        assert decision.run.shape == (0,)

    def test_batch_of_one_matches_scalar(self):
        plan = batch_compute_plan(
            np.asarray([10.0]), np.asarray([60.0]), np.asarray([8.0]),
            np.asarray([40.0]), _tile(SPEEDS, 1), _tile(POWERS, 1),
        )
        scalar = compute_plan(10.0, 60.0, 8.0, 40.0, SCALE)
        assert SCALE.levels[int(plan.level[0])] == scalar.level
        assert plan.s1[0] == scalar.s1  # repro-lint: disable=RPR102 -- bit-exact kernel contract
        assert plan.s2[0] == scalar.s2  # repro-lint: disable=RPR102 -- bit-exact kernel contract

    def test_all_lanes_miss_run_best_effort_at_max(self):
        # Deadlines already passed: unreachable lanes run at full speed
        # (the scalar best-effort plan) instead of idling forever.
        n = 4
        now = np.full(n, 100.0)
        deadline = np.full(n, 90.0)
        work = np.full(n, 5.0)
        energy = np.full(n, 1000.0)
        kind = np.asarray(
            sorted(SCHEDULER_KINDS.values()), dtype=np.int64
        )
        decision = batch_decide(
            kind, now, deadline, work, energy,
            np.zeros(n, dtype=np.bool_), _tile(SPEEDS, n), _tile(POWERS, n),
        )
        # LSA's rule is energy-only (it never checks reachability): with
        # plentiful energy it still dispatches immediately.
        assert decision.run.all()
        assert (decision.level == len(SCALE.levels) - 1).all()

    def test_storage_pinned_at_zero_idles_until_deadline(self):
        # No stored energy and no predicted harvest: every energy-aware
        # policy waits; s1 == s2 == deadline.
        n = 3
        now = np.zeros(n)
        deadline = np.full(n, 50.0)
        work = np.full(n, 5.0)
        energy = np.zeros(n)
        kind = np.asarray(
            [SCHED_LSA, SCHED_EA_DVFS, SCHED_EA_DVFS_NOSLOWDOWN],
            dtype=np.int64,
        )
        decision = batch_decide(
            kind, now, deadline, work, energy,
            np.zeros(n, dtype=np.bool_), _tile(SPEEDS, n), _tile(POWERS, n),
        )
        assert not decision.run.any()
        assert (decision.reconsider_at == 50.0).all()  # repro-lint: disable=RPR101 -- exact: idle waits to the deadline instant

    def test_storage_pinned_at_capacity_fast_path(self):
        # EA-DVFS's full-storage fast path runs at max even when the
        # reported outlook would otherwise stretch.
        decision = batch_decide(
            np.asarray([SCHED_EA_DVFS], dtype=np.int64),
            np.zeros(1), np.asarray([50.0]), np.asarray([5.0]),
            np.asarray([10.0]),
            np.ones(1, dtype=np.bool_),
            _tile(SPEEDS, 1), _tile(POWERS, 1),
        )
        assert decision.run[0]
        assert decision.level[0] == len(SCALE.levels) - 1
        assert math.isnan(decision.switch_at[0])

    def test_scheduler_kinds_cover_registry_names(self):
        assert set(SCHEDULER_KINDS) <= set(available_schedulers())


# -- numpy facts the engine's bit-exactness argument rests on -------------


class TestNumpyAccumulationContract:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        )
    )
    def test_cumsum_accumulates_left_to_right(self, values):
        """``np.cumsum`` rounds once per element in walk order.

        ``repro.sim.batch._quantized_energy`` relies on this to keep
        batch energy totals bit-equal to the scalar segment walk.
        """
        row = np.asarray(values)
        total = 0.0
        for value in values:
            total += value
        assert np.cumsum(row)[-1] == total

        block = np.tile(row, (3, 1))
        assert (np.cumsum(block, axis=1)[:, -1] == total).all()

    def test_masked_zero_add_is_identity(self):
        rng = np.random.default_rng(1234)
        values = rng.standard_normal(500) * 1e3
        contribution = np.where(
            np.arange(500) % 2 == 0, values, 0.0
        )
        total = 0.0
        for i in range(0, 500, 2):
            total += values[i]
        assert np.cumsum(contribution)[-1] == total

    def test_rng_vector_draw_matches_sequential(self):
        """One vectorized draw == n sequential draws (same seed).

        The array job-generation path depends on this equivalence for
        stochastic sources.
        """
        vector = np.random.default_rng(7).standard_normal(64)
        sequential = np.asarray(
            [np.random.default_rng(7).standard_normal(64)[i]
             for i in range(64)]
        )
        assert (vector == sequential).all()

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),
                st.floats(min_value=1e-9, max_value=1e6),
            ),
            min_size=1, max_size=100,
        )
    )
    def test_mod_matches_python_for_nonnegative(self, pairs):
        """``np.mod`` == ``%`` on non-negative operands.

        The profile-predictor bin walk
        (:func:`repro.energy.vectorized.iter_profile_segments`) folds
        ``t0`` into the cycle with ``np.mod`` where the scalar predictor
        uses ``%``.
        """
        a = np.asarray([p[0] for p in pairs])
        b = np.asarray([p[1] for p in pairs])
        out = np.mod(a, b)
        for x, y, o in zip(a.tolist(), b.tolist(), out.tolist()):
            assert o == x % y

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9),
            min_size=1, max_size=100,
        ),
        st.booleans(),
    )
    def test_nextafter_matches_math(self, values, upward):
        """``np.nextafter`` == ``math.nextafter`` (the tail snap).

        ``_batch_snap_tail`` nudges final segment durations by ulps to
        restore exact window coverage, mirroring the scalar
        ``_snap_tail`` loop.
        """
        target = math.inf if upward else -math.inf
        row = np.asarray(values)
        out = np.nextafter(row, target)
        for x, o in zip(values, out.tolist()):
            assert o == math.nextafter(x, target)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e15),
            min_size=1, max_size=100,
        )
    )
    def test_astype_int64_truncates_like_int(self, values):
        """``.astype(np.int64)`` == ``int()`` for non-negative floats.

        The bin walk derives each lane's starting bin by truncating
        ``position / bin_width`` exactly as the scalar predictor's
        ``int(...)`` does.
        """
        row = np.asarray(values)
        out = row.astype(np.int64)
        for x, o in zip(values, out.tolist()):
            assert o == int(x)

    def test_array_power_not_trusted_for_ewma(self):
        """numpy's vectorized ``np.power`` is NOT bit-compatible with
        ``**`` — a SIMD path deviates from libm ``pow`` by one ulp on a
        few percent of inputs (observed on numpy 2.4.6).  The EWMA decay
        factors therefore route through
        :func:`repro.energy.vectorized._libm_pow` (element-wise libm),
        which IS bit-compatible.  If the first assertion ever fails,
        np.power became bit-exact and ``_libm_pow`` can be retired.

        The static side of this contract is RPR402: ``np.power`` sits in
        ``repro.lint.rules_numpy.DEFAULT_DIVERGENT_UFUNCS``, so a
        doctrine module cannot call it without a justified suppression.
        Retiring ``_libm_pow`` therefore takes one PR that (1) shows
        this canary's divergence assertion failing, (2) drops ``power``/
        ``float_power`` from the ufunc table, and (3) refreshes the
        affected parity pins (``python -m repro.lint.parity --print``) —
        the ``pow`` vs ``pow[simd]`` fingerprint tokens are deliberately
        distinct so the swap cannot happen silently.
        """
        from repro.energy.vectorized import _libm_pow

        rng = np.random.default_rng(42)
        base = rng.uniform(0.0, 1.0, size=20000)
        expo = rng.uniform(0.0, 30.0, size=20000)
        simd = np.power(base, expo)
        libm = _libm_pow(base, expo)
        assert (simd != libm).any()
        for b, e, o in zip(
            base[:2000].tolist(), expo[:2000].tolist(), libm[:2000].tolist()
        ):
            assert o == b**e
