"""Tests for the overflow-aware EA-DVFS extension."""

import pytest

from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource, SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.sched.base import EnergyOutlook
from repro.sched.extensions import OverflowAwareEaDvfsScheduler
from repro.core.ea_dvfs import EaDvfsScheduler
from repro.sched.registry import make_scheduler
from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import AperiodicTask, PeriodicTask, TaskSet


def make_ready(*specs):
    queue = EdfReadyQueue()
    for release, deadline, wcet, name in specs:
        task = AperiodicTask(
            arrival=release, relative_deadline=deadline - release,
            wcet=wcet, name=name,
        )
        job = Job(task=task, release=release, absolute_deadline=deadline,
                  wcet=wcet)
        job.mark_released()
        queue.push(job)
    return queue


def outlook(stored, capacity, harvest):
    storage = IdealStorage(capacity=capacity, initial=stored)
    return EnergyOutlook(storage, OraclePredictor(ConstantSource(harvest)))


class TestOverflowAwareDecisions:
    def test_registered(self, two_speed):
        scheduler = make_scheduler("ea-dvfs-oa", two_speed)
        assert isinstance(scheduler, OverflowAwareEaDvfsScheduler)

    def test_matches_base_when_no_overflow_risk(self, two_speed):
        """Large headroom: identical decision to plain EA-DVFS."""
        base = EaDvfsScheduler(two_speed)
        extended = OverflowAwareEaDvfsScheduler(two_speed)
        ready = make_ready((0.0, 16.0, 4.0, "t"))
        view = outlook(stored=16.0, capacity=1000.0, harvest=0.5)
        a = base.decide(4.0, make_ready((0.0, 16.0, 4.0, "t")), view)
        b = extended.decide(4.0, ready, view)
        assert a.is_idle == b.is_idle
        if not a.is_idle:
            assert a.level == b.level
            assert a.switch_to_max_at == b.switch_to_max_at

    def test_raises_level_when_overflow_predicted(self, xscale):
        """Small headroom + strong inflow: the slow phase would clip the
        storage, so the extension speeds up."""
        base = EaDvfsScheduler(xscale)
        extended = OverflowAwareEaDvfsScheduler(xscale)
        # Storage nearly full (headroom 2), harvest 3/unit over a long
        # window: huge predicted inflow, most of it would overflow at a
        # slow level.
        ready_a = make_ready((0.0, 100.0, 30.0, "t"))
        ready_b = make_ready((0.0, 100.0, 30.0, "t"))
        view_a = outlook(stored=38.0, capacity=40.0, harvest=3.0)
        view_b = outlook(stored=38.0, capacity=40.0, harvest=3.0)
        a = base.decide(0.0, ready_a, view_a)
        b = extended.decide(0.0, ready_b, view_b)
        if not a.is_idle and not b.is_idle:
            assert b.level.speed >= a.level.speed

    def test_infinite_capacity_never_triggers(self, xscale):
        import math

        extended = OverflowAwareEaDvfsScheduler(xscale)
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        view = EnergyOutlook(storage, OraclePredictor(ConstantSource(5.0)))
        ready = make_ready((0.0, 50.0, 5.0, "t"))
        decision = extended.decide(0.0, ready, view)
        assert decision.level.speed == 1.0  # EDF degeneration preserved

    def test_idle_passthrough(self, xscale):
        extended = OverflowAwareEaDvfsScheduler(xscale)
        decision = extended.decide(
            0.0, EdfReadyQueue(), outlook(1.0, 10.0, 0.1)
        )
        assert decision.is_idle


class TestOverflowAwareEndToEnd:
    def _run(self, name, capacity, seed=3):
        from repro.sim.simulator import (
            HarvestingRtSimulator,
            SimulationConfig,
        )
        from repro.cpu.presets import xscale_pxa
        from repro.tasks.workload import generate_paper_taskset

        scale = xscale_pxa()
        source = SolarStochasticSource(seed=seed)
        taskset = generate_paper_taskset(
            n_tasks=5, utilization=0.4, seed=seed,
            mean_harvest_power=source.mean_power(),
            max_power=scale.max_power,
        )
        sim = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=IdealStorage(capacity=capacity),
            scheduler=make_scheduler(name, scale),
            predictor=OraclePredictor(source),
            config=SimulationConfig(horizon=3000.0),
        )
        return sim.run()

    @pytest.mark.parametrize("capacity", [20.0, 60.0])
    def test_no_worse_than_base_on_average(self, capacity):
        base = sum(self._run("ea-dvfs", capacity, s).missed_count
                   for s in range(3))
        extended = sum(self._run("ea-dvfs-oa", capacity, s).missed_count
                       for s in range(3))
        # The extension may only help (or tie) within noise.
        assert extended <= base + 2

    def test_reduces_overflow_waste(self):
        base = self._run("ea-dvfs", 20.0)
        extended = self._run("ea-dvfs-oa", 20.0)
        assert extended.overflow_energy <= base.overflow_energy + 1.0
