"""Unit tests for the baseline schedulers and the decision protocol."""

import math

import pytest

from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sched.base import Decision, EnergyOutlook
from repro.sched.edf import GreedyEdfScheduler, StretchEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import AperiodicTask


def make_ready(*specs):
    queue = EdfReadyQueue()
    for release, deadline, wcet, name in specs:
        task = AperiodicTask(
            arrival=release, relative_deadline=deadline - release,
            wcet=wcet, name=name,
        )
        job = Job(task=task, release=release, absolute_deadline=deadline,
                  wcet=wcet)
        job.mark_released()
        queue.push(job)
    return queue


def outlook(stored, capacity=1000.0, harvest=0.0):
    storage = IdealStorage(capacity=capacity, initial=stored)
    return EnergyOutlook(storage, OraclePredictor(ConstantSource(harvest)))


class TestDecisionValidation:
    def test_idle_cannot_carry_level(self, xscale):
        with pytest.raises(ValueError, match="idle decision"):
            Decision(job=None, level=xscale.max_level)

    def test_dispatch_requires_level(self):
        queue = make_ready((0.0, 10.0, 1.0, "t"))
        with pytest.raises(ValueError, match="requires a level"):
            Decision(job=queue.peek(), level=None)

    def test_nan_reconsider_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Decision.idle(reconsider_at=math.nan)

    def test_factories(self, xscale):
        queue = make_ready((0.0, 10.0, 1.0, "t"))
        idle = Decision.idle(reconsider_at=5.0)
        assert idle.is_idle and idle.reconsider_at == 5.0
        run = Decision.run(queue.peek(), xscale.max_level)
        assert not run.is_idle


class TestLazyScheduler:
    def test_empty_queue_idles(self, two_speed):
        decision = LazyScheduler(two_speed).decide(
            0.0, EdfReadyQueue(), outlook(10.0)
        )
        assert decision.is_idle

    def test_motivational_start_time(self, two_speed):
        """Section 2: LSA starts tau1 at time 12 (s* = 16 - 32/8)."""
        ready = make_ready((0.0, 16.0, 4.0, "tau1"))
        decision = LazyScheduler(two_speed).decide(
            0.0, ready, outlook(24.0, harvest=0.5)
        )
        assert decision.is_idle
        assert decision.reconsider_at == pytest.approx(12.0)

    def test_starts_when_budget_reached(self, two_speed):
        ready = make_ready((0.0, 16.0, 4.0, "tau1"))
        # At t=12 with exact prediction: E_avail = 30 + 0.5*4 = 32,
        # sr_max = 4, s* = max(12, 12) = 12 -> dispatch now.
        decision = LazyScheduler(two_speed).decide(
            12.0, ready, outlook(30.0, harvest=0.5)
        )
        assert not decision.is_idle
        assert decision.level.speed == 1.0

    def test_always_full_speed(self, xscale):
        ready = make_ready((0.0, 100.0, 1.0, "t"))
        decision = LazyScheduler(xscale).decide(0.0, ready, outlook(1000.0))
        assert decision.level.speed == 1.0
        assert decision.switch_to_max_at is None

    def test_infinite_energy_immediate(self, xscale):
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        view = EnergyOutlook(storage, OraclePredictor(ConstantSource(0.0)))
        ready = make_ready((0.0, 100.0, 1.0, "t"))
        decision = LazyScheduler(xscale).decide(0.0, ready, view)
        assert not decision.is_idle


class TestGreedyEdf:
    def test_dispatches_immediately_regardless_of_energy(self, xscale):
        ready = make_ready((0.0, 100.0, 1.0, "t"))
        decision = GreedyEdfScheduler(xscale).decide(0.0, ready, outlook(0.0))
        assert not decision.is_idle
        assert decision.level.speed == 1.0

    def test_edf_priority(self, xscale):
        ready = make_ready((0.0, 50.0, 1.0, "late"), (0.0, 10.0, 1.0, "early"))
        decision = GreedyEdfScheduler(xscale).decide(0.0, ready, outlook(10.0))
        assert decision.job.task.name == "early"

    def test_empty_queue_idles(self, xscale):
        assert GreedyEdfScheduler(xscale).decide(
            0.0, EdfReadyQueue(), outlook(10.0)
        ).is_idle


class TestStretchEdf:
    def test_picks_min_feasible_level(self, xscale):
        # work 4 in window 16 -> S = 0.4 on the XScale ladder.
        ready = make_ready((0.0, 16.0, 4.0, "t"))
        decision = StretchEdfScheduler(xscale).decide(0.0, ready, outlook(0.0))
        assert decision.level.speed == pytest.approx(0.4)
        assert decision.switch_to_max_at is None

    def test_full_speed_when_nothing_slower_fits(self, xscale):
        ready = make_ready((0.0, 10.0, 9.0, "t"))
        decision = StretchEdfScheduler(xscale).decide(0.0, ready, outlook(0.0))
        assert decision.level.speed == 1.0

    def test_best_effort_on_unreachable_deadline(self, xscale):
        # Feasible at release; unreachable once the window shrank below
        # the remaining work.
        ready = make_ready((0.0, 10.0, 3.0, "t"))
        decision = StretchEdfScheduler(xscale).decide(8.0, ready, outlook(0.0))
        assert decision.level.speed == 1.0

    def test_window_shrinks_as_time_passes(self, xscale):
        ready = make_ready((0.0, 16.0, 4.0, "t"))
        scheduler = StretchEdfScheduler(xscale)
        at_zero = scheduler.decide(0.0, ready, outlook(0.0))
        at_ten = scheduler.decide(10.0, ready, outlook(0.0))
        assert at_ten.level.speed > at_zero.level.speed


class TestRegistry:
    def test_all_builtins_available(self):
        from repro.sched.registry import available_schedulers

        assert set(available_schedulers()) >= {
            "ea-dvfs", "lsa", "edf", "stretch-edf",
        }

    def test_make_scheduler(self, xscale):
        from repro.sched.registry import make_scheduler

        scheduler = make_scheduler("lsa", xscale)
        assert isinstance(scheduler, LazyScheduler)
        assert scheduler.scale is xscale

    def test_unknown_name_rejected(self, xscale):
        from repro.sched.registry import make_scheduler

        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("nope", xscale)


class TestRegistryErrors:
    @pytest.fixture
    def registry(self):
        import repro.sched.registry as registry

        yield registry
        # Drop anything a test registered so state cannot leak.
        for name in list(registry._FACTORIES):
            if name.startswith("test-"):
                registry.unregister_scheduler(name)

    def test_duplicate_registration_lists_names(self, registry):
        registry.register_scheduler("test-dup", LazyScheduler)
        with pytest.raises(ValueError, match="already registered") as excinfo:
            registry.register_scheduler("test-dup", LazyScheduler)
        assert "test-dup" in str(excinfo.value)
        assert "lsa" in str(excinfo.value)  # the listing names the others

    def test_builtin_names_are_reserved(self, registry):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_scheduler("lsa", LazyScheduler)

    def test_empty_or_non_string_name_rejected(self, registry):
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register_scheduler("", LazyScheduler)
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register_scheduler(None, LazyScheduler)

    def test_unregister_unknown_lists_available(self, registry):
        with pytest.raises(ValueError, match="unknown scheduler") as excinfo:
            registry.unregister_scheduler("test-ghost")
        assert "lsa" in str(excinfo.value)

    def test_register_unregister_round_trip(self, registry, xscale):
        registry.register_scheduler("test-custom", LazyScheduler)
        assert "test-custom" in registry.available_schedulers()
        assert isinstance(
            registry.make_scheduler("test-custom", xscale), LazyScheduler
        )
        registry.unregister_scheduler("test-custom")
        assert "test-custom" not in registry.available_schedulers()

    def test_early_registration_does_not_suppress_builtins(self, registry):
        # A custom registration arriving before any lookup must still
        # leave every built-in available (the lazy-load guard is a flag,
        # not "is the table empty").
        registry.register_scheduler("test-early", LazyScheduler)
        assert {"ea-dvfs", "lsa", "edf"} <= set(registry.available_schedulers())


class TestEnergyOutlook:
    def test_available_until_sums_stored_and_prediction(self):
        view = outlook(10.0, harvest=2.0)
        assert view.available_until(0.0, 5.0) == pytest.approx(20.0)

    def test_available_until_past_deadline_is_stored_only(self):
        """Regression: a job past its deadline (CONTINUE policy) queries a
        reversed interval; the harvest term must be zero, not an error."""
        view = outlook(10.0, harvest=2.0)
        assert view.available_until(11.0, 10.0) == pytest.approx(10.0)

    def test_schedulers_handle_past_deadline_jobs(self, xscale):
        """LSA and EA-DVFS dispatch overdue jobs at full speed."""
        from repro.core.ea_dvfs import EaDvfsScheduler

        ready = make_ready((0.0, 10.0, 3.0, "overdue"))
        for scheduler in (LazyScheduler(xscale), EaDvfsScheduler(xscale)):
            decision = scheduler.decide(11.0, ready, outlook(100.0))
            assert not decision.is_idle
            assert decision.level.speed == 1.0

    def test_infinite_stored_is_infinite(self):
        storage = IdealStorage(capacity=math.inf, initial=math.inf)
        view = EnergyOutlook(storage, OraclePredictor(ConstantSource(1.0)))
        assert math.isinf(view.available_until(0.0, 5.0))

    def test_storage_passthroughs(self):
        view = outlook(30.0, capacity=100.0)
        assert view.stored == 30.0
        assert view.capacity == 100.0
        assert not view.storage_is_full
