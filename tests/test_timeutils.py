"""Unit tests for the numeric time helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timeutils import (
    EPSILON,
    INFINITY,
    clamp,
    is_finite,
    snap_nonnegative,
    time_eq,
    time_ge,
    time_gt,
    time_le,
    time_lt,
    validate_interval,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


class TestComparisons:
    def test_eq_within_epsilon(self):
        assert time_eq(1.0, 1.0 + EPSILON / 2)
        assert time_eq(1.0, 1.0)

    def test_eq_beyond_epsilon(self):
        assert not time_eq(1.0, 1.0 + 10 * EPSILON)

    def test_eq_infinities(self):
        assert time_eq(INFINITY, INFINITY)
        assert not time_eq(INFINITY, 1.0)

    def test_lt_strict(self):
        assert time_lt(1.0, 2.0)
        assert not time_lt(1.0, 1.0 + EPSILON / 2)
        assert not time_lt(2.0, 1.0)

    def test_le_tolerant(self):
        assert time_le(1.0 + EPSILON / 2, 1.0)
        assert time_le(0.5, 1.0)
        assert not time_le(2.0, 1.0)

    def test_gt_strict(self):
        assert time_gt(2.0, 1.0)
        assert not time_gt(1.0 + EPSILON / 2, 1.0)

    def test_ge_tolerant(self):
        assert time_ge(1.0 - EPSILON / 2, 1.0)
        assert not time_ge(0.5, 1.0)

    @given(finite_floats, finite_floats)
    def test_trichotomy(self, a, b):
        """Exactly one of lt / eq / gt holds for any pair."""
        outcomes = [time_lt(a, b), time_eq(a, b), time_gt(a, b)]
        assert sum(outcomes) == 1

    @given(finite_floats, finite_floats)
    def test_le_is_lt_or_eq(self, a, b):
        assert time_le(a, b) == (time_lt(a, b) or time_eq(a, b))


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError, match="empty clamp interval"):
            clamp(0.5, 1.0, 0.0)

    @given(finite_floats)
    def test_result_in_bounds(self, x):
        assert 0.0 <= clamp(x, 0.0, 10.0) <= 10.0


class TestSnapNonnegative:
    def test_positive_passthrough(self):
        assert snap_nonnegative(3.5) == 3.5

    def test_zero_passthrough(self):
        assert snap_nonnegative(0.0) == 0.0

    def test_tiny_negative_snaps(self):
        assert snap_nonnegative(-EPSILON / 2) == 0.0

    def test_large_negative_raises(self):
        with pytest.raises(ValueError, match="negative beyond tolerance"):
            snap_nonnegative(-1.0)

    def test_custom_tolerance(self):
        assert snap_nonnegative(-0.5, eps=1.0) == 0.0


class TestValidateInterval:
    def test_valid(self):
        validate_interval(0.0, 1.0)
        validate_interval(5.0, 5.0)  # empty is fine
        validate_interval(0.0, math.inf)  # open-ended is fine

    def test_reversed_raises(self):
        with pytest.raises(ValueError, match="precedes"):
            validate_interval(2.0, 1.0)

    def test_nan_end_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            validate_interval(0.0, math.nan)

    def test_infinite_start_raises(self):
        with pytest.raises(ValueError, match="must be finite"):
            validate_interval(math.inf, math.inf)


def test_is_finite():
    assert is_finite(1.0)
    assert not is_finite(math.inf)
    assert not is_finite(math.nan)
