"""Golden-trace regression tests.

Each test recomputes a small, fast experiment payload and compares its
canonical JSON byte-for-byte against the fixture pinned in this
directory.  A numeric change anywhere in the analytic pipeline fails
loudly with a diff summary; refresh intentionally-changed fixtures with:

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden
"""

import json

import pytest

from repro.serialization import canonical_json
from repro.verify.golden import (
    GOLDEN_PAYLOADS,
    GoldenMismatch,
    GoldenStore,
    golden_fig5_payload,
    golden_table1_payload,
)


@pytest.mark.golden
class TestGoldenRegression:
    @pytest.mark.parametrize("name", sorted(GOLDEN_PAYLOADS))
    def test_payload_matches_fixture(self, golden_store, name):
        assert golden_store.check(name, GOLDEN_PAYLOADS[name]())

    def test_fixtures_are_canonical_on_disk(self, golden_store):
        """Pinned files must already be in canonical form (else every
        --update-golden run would churn unrelated bytes)."""
        if golden_store.update:
            pytest.skip("fixtures are being rewritten")
        for name in sorted(GOLDEN_PAYLOADS):
            path = golden_store.path_for(name)
            text = path.read_text()
            assert text == canonical_json(json.loads(text)), (
                f"{path} is not canonical JSON"
            )


@pytest.mark.golden
class TestGoldenPayloads:
    def test_fig5_payload_is_deterministic(self):
        assert canonical_json(golden_fig5_payload()) == canonical_json(
            golden_fig5_payload()
        )

    def test_table1_payload_shape(self):
        payload = golden_table1_payload()
        assert [row["utilization"] for row in payload["rows"]] == [0.2, 0.6]
        for row in payload["rows"]:
            assert row["cmin_lsa"] > 0
            assert row["cmin_ea_dvfs"] > 0


class TestGoldenStore:
    def test_update_mode_writes_fixture(self, tmp_path):
        store = GoldenStore(tmp_path / "golden", update=True)
        assert store.check("sample", {"x": 1.0})
        assert store.path_for("sample").exists()

    def test_missing_fixture_raises(self, tmp_path):
        store = GoldenStore(tmp_path, update=False)
        with pytest.raises(FileNotFoundError, match="--update-golden"):
            store.check("absent", {"x": 1.0})

    def test_match_round_trip(self, tmp_path):
        store = GoldenStore(tmp_path, update=True)
        payload = {"metrics": {"a": 1 / 3, "b": [1.0, 2.0]}, "n": 4}
        store.check("roundtrip", payload)
        reader = GoldenStore(tmp_path, update=False)
        assert reader.check("roundtrip", payload)

    def test_mismatch_fails_loudly_with_diff(self, tmp_path):
        store = GoldenStore(tmp_path, update=True)
        store.check("drift", {"value": 1.0, "stable": "yes"})
        reader = GoldenStore(tmp_path, update=False)
        with pytest.raises(GoldenMismatch) as excinfo:
            reader.check("drift", {"value": 1.25, "stable": "yes"})
        message = str(excinfo.value)
        assert "changed lines" in message
        assert "-  \"value\": 1.0" in message
        assert "+  \"value\": 1.25" in message
        assert "--update-golden" in message

    def test_float_noise_is_absorbed(self, tmp_path):
        """Sub-10-significant-digit noise must not trip the comparison."""
        store = GoldenStore(tmp_path, update=True)
        store.check("noise", {"value": 0.1 + 0.2})
        reader = GoldenStore(tmp_path, update=False)
        assert reader.check("noise", {"value": 0.3})
