#!/usr/bin/env python
"""A solar-powered sensor node with a day/night harvest profile.

The paper's introduction motivates EA-DVFS with perpetually-operating
sensor nodes (Heliomote / Prometheus).  This example models such a node:

* three periodic firmware tasks — sensor sampling, local processing and a
  radio duty cycle — on the XScale-style processor;
* a composite source: a day/night solar panel plus a small vibration
  harvester trickle;
* a super-capacitor-class storage, swept over a few sizes.

For each storage size it reports the deadline miss rate and the energy
wasted to overflow under plain EDF, LSA and EA-DVFS.

Run:  python examples/solar_sensor_node.py
"""

from repro import (
    CompositeSource,
    ConstantSource,
    DayNightSource,
    EaDvfsScheduler,
    GreedyEdfScheduler,
    HarvestingRtSimulator,
    IdealStorage,
    LazyScheduler,
    PeriodicTask,
    ProfilePredictor,
    SimulationConfig,
    TaskSet,
    xscale_pxa,
)

HORIZON = 8_000.0
DAY_LENGTH = 400.0  # one "day" = 800 time units
SCHEDULERS = (GreedyEdfScheduler, LazyScheduler, EaDvfsScheduler)


def build_source() -> CompositeSource:
    solar = DayNightSource(
        day_power=4.0,
        night_power=0.0,
        day_length=DAY_LENGTH,
        night_length=DAY_LENGTH,
    )
    vibration = ConstantSource(0.15)  # tiny but always-on trickle
    return CompositeSource([solar, vibration])


def build_workload() -> TaskSet:
    return TaskSet(
        [
            # Fast sampling loop: light but frequent.
            PeriodicTask(period=10.0, wcet=0.8, name="sample"),
            # On-node feature extraction over each sample batch.
            PeriodicTask(period=50.0, wcet=9.0, name="process"),
            # Radio transmission window once per 100 units.
            PeriodicTask(period=100.0, wcet=14.0, name="radio"),
        ]
    )


def main() -> None:
    source_spec = build_source()
    taskset = build_workload()
    print(f"workload: {taskset} (U = {taskset.utilization:.3f})")
    print(f"harvest: day/night solar (mean {source_spec.mean_power():.2f}) "
          f"over {HORIZON:g} time units\n")

    header = f"{'capacity':>9} " + "".join(
        f"{cls.name + ' miss':>14}{cls.name + ' ovfl':>14}"
        for cls in SCHEDULERS
    )
    print(header)
    for capacity in (50.0, 150.0, 400.0, 1200.0):
        row = f"{capacity:9.0f} "
        for scheduler_cls in SCHEDULERS:
            simulator = HarvestingRtSimulator(
                taskset=build_workload(),
                source=build_source(),
                storage=IdealStorage(capacity=capacity),
                scheduler=scheduler_cls(xscale_pxa()),
                predictor=ProfilePredictor(period=2 * DAY_LENGTH, n_bins=32),
                config=SimulationConfig(horizon=HORIZON),
            )
            result = simulator.run()
            row += f"{result.miss_rate:14.4f}{result.overflow_energy:14.1f}"
        print(row)

    print(
        "\nNight-time is the stress test: the node must ride each 400-unit\n"
        "dark period on stored energy alone.  EA-DVFS stretches the heavy\n"
        "'process'/'radio' jobs at dusk, so a much smaller super-capacitor\n"
        "sustains a low miss rate than under LSA or plain EDF."
    )


if __name__ == "__main__":
    main()
