#!/usr/bin/env python
"""The paper's worked examples, replayed on the real simulator.

Section 2 (Figure 1): LSA runs tau1 flat-out over [12, 16], drains the
storage and strands tau2; EA-DVFS stretches tau1 at half speed and meets
both deadlines.

Section 4.3 (Figure 3): stretching must stop at s2 — a greedy stretcher
(the ``stretch-edf`` baseline) starves tau2 despite ample energy.

Run:  python examples/motivational_example.py
"""

from repro.experiments.motivation import (
    run_motivational_example,
    run_stretch_example,
)
from repro.sim.tracing import TraceKind


def timeline(outcome) -> str:
    """Render the traced schedule of one run as indented event lines."""
    rows = []
    for record in outcome.result.trace:
        if record.kind == TraceKind.JOB_START:
            rows.append(
                f"    t={record.time:6.3f}  start    {record['job']} "
                f"at speed {record['speed']:.2f}"
            )
        elif record.kind == TraceKind.FREQ_CHANGE:
            rows.append(
                f"    t={record.time:6.3f}  speed -> {record['speed']:.2f}"
            )
        elif record.kind == TraceKind.JOB_COMPLETE:
            rows.append(f"    t={record.time:6.3f}  complete {record['job']}")
        elif record.kind == TraceKind.JOB_MISS:
            rows.append(
                f"    t={record.time:6.3f}  MISS     {record['job']} "
                f"({record['remaining']:.2f} work left)"
            )
    return "\n".join(rows)


def main() -> None:
    print("=" * 70)
    print("Section 2 / Figure 1: tau1=(0,16,4), tau2=(5,16,1.5), "
          "E0=24, PS=0.5, Pmax=8")
    print("=" * 70)
    for name in ("lsa", "ea-dvfs", "edf"):
        outcome = run_motivational_example(name)
        print(f"\n{outcome.format_text()}")
        print(timeline(outcome))

    print()
    print("=" * 70)
    print("Section 4.3 / Figure 3: tau1=(0,16,4), tau2=(5,12,1.5), "
          "fn=0.25*fmax")
    print("=" * 70)
    for name in ("ea-dvfs", "stretch-edf"):
        outcome = run_stretch_example(name)
        print(f"\n{outcome.format_text()}")
        print(timeline(outcome))

    print(
        "\nTakeaway: slowing down saves the energy that lets tau2 meet its\n"
        "deadline (Figure 1), but only if the stretch ends at s2 so the\n"
        "successor is not starved of time (Figure 3)."
    )


if __name__ == "__main__":
    main()
