#!/usr/bin/env python
"""Quickstart: simulate one task set under EA-DVFS, LSA and plain EDF.

Builds the paper's evaluation setup by hand — the eq. (13) solar source,
an XScale-style DVFS processor, an ideal storage — and compares the three
schedulers on the same workload and the same harvest realization.

Run:  python examples/quickstart.py
"""

from repro import (
    EaDvfsScheduler,
    GreedyEdfScheduler,
    HarvestingRtSimulator,
    IdealStorage,
    LazyScheduler,
    ProfilePredictor,
    SimulationConfig,
    SolarStochasticSource,
    generate_paper_taskset,
    xscale_pxa,
)

SEED = 7
CAPACITY = 100.0  # small enough that energy management matters
UTILIZATION = 0.4
HORIZON = 10_000.0


def main() -> None:
    scale = xscale_pxa()
    # Workload per section 5.1: 5 periodic tasks, WCETs coupled to the
    # mean harvest power, scaled to the target utilization.
    source_for_stats = SolarStochasticSource(seed=SEED)
    taskset = generate_paper_taskset(
        n_tasks=5,
        utilization=UTILIZATION,
        mean_harvest_power=source_for_stats.mean_power(),
        max_power=scale.max_power,
        seed=SEED,
    )
    print(f"workload: {taskset}")
    for task in taskset:
        print(f"  {task.name}: period={task.period:g} wcet={task.wcet:.3f} "
              f"(u={task.utilization:.3f})")

    print(f"\nstorage capacity={CAPACITY:g}, horizon={HORIZON:g}\n")
    for scheduler_cls in (GreedyEdfScheduler, LazyScheduler, EaDvfsScheduler):
        # Fresh source/storage per run; same seed -> same harvest trace.
        source = SolarStochasticSource(seed=SEED)
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=IdealStorage(capacity=CAPACITY),
            scheduler=scheduler_cls(scale),
            predictor=ProfilePredictor(),
            config=SimulationConfig(horizon=HORIZON),
        )
        result = simulator.run()
        print(result.summary())
        print()


if __name__ == "__main__":
    main()
