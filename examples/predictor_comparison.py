#!/usr/bin/env python
"""How much does harvest prediction quality matter to EA-DVFS?

Both LSA and EA-DVFS budget energy using the *predicted* future harvest
ES(t, D) (section 5.1: "we trace the PS(t) profile to predict").  This
ablation runs EA-DVFS with four predictors of decreasing fidelity:

* oracle        — reads the realized future (upper bound);
* profile       — cyclic-profile EWMA, the paper's approach;
* mean          — single running mean power;
* last-value    — persistence forecast.

Run:  python examples/predictor_comparison.py
"""

from repro import (
    EaDvfsScheduler,
    HarvestingRtSimulator,
    IdealStorage,
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
    SimulationConfig,
    SolarStochasticSource,
    generate_paper_taskset,
    xscale_pxa,
)

UTILIZATION = 0.4
CAPACITY = 60.0
HORIZON = 10_000.0
N_SETS = 6


def make_predictor(kind: str, source):
    if kind == "oracle":
        return OraclePredictor(source)
    if kind == "profile":
        return ProfilePredictor()
    if kind == "mean":
        return MeanPowerPredictor(alpha=0.05)
    if kind == "last-value":
        return LastValuePredictor()
    raise ValueError(kind)


def main() -> None:
    scale = xscale_pxa()
    print(
        f"EA-DVFS miss rate by predictor (U={UTILIZATION}, "
        f"capacity={CAPACITY:g}, {N_SETS} task sets):\n"
    )
    print(f"{'predictor':>12} {'miss rate':>10} {'stalls':>8}")
    for kind in ("oracle", "profile", "mean", "last-value"):
        missed = judged = stalls = 0
        for seed in range(N_SETS):
            source = SolarStochasticSource(seed=seed)
            taskset = generate_paper_taskset(
                n_tasks=5,
                utilization=UTILIZATION,
                mean_harvest_power=source.mean_power(),
                max_power=scale.max_power,
                seed=seed,
            )
            simulator = HarvestingRtSimulator(
                taskset=taskset,
                source=source,
                storage=IdealStorage(capacity=CAPACITY),
                scheduler=EaDvfsScheduler(scale),
                predictor=make_predictor(kind, source),
                config=SimulationConfig(horizon=HORIZON),
            )
            result = simulator.run()
            missed += result.missed_count
            judged += result.judged_count
            stalls += result.stall_count
        print(f"{kind:>12} {missed / judged:10.4f} {stalls:8d}")

    print(
        "\nThe oracle bounds what better forecasting could buy.  For the\n"
        "eq. (13) source all predictors land within a fraction of a\n"
        "percent of it - the per-quantum noise averages out over a\n"
        "deadline window - so EA-DVFS is robust to prediction fidelity\n"
        "here; the stall counts show *how* they differ: optimistic\n"
        "predictors start earlier and ride the storage floor more often."
    )


if __name__ == "__main__":
    main()
