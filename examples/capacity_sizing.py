#!/usr/bin/env python
"""Storage sizing: how small a super-capacitor can the node ship with?

Reproduces the methodology behind the paper's Table 1 on a single
workload: for each scheduler, bisect for the smallest storage capacity
that sustains a zero deadline miss rate over the replicated runs, then
report the LSA/EA-DVFS ratio — the headline "at least 25% smaller
storage" claim of the abstract.

Run:  python examples/capacity_sizing.py            (quick, 3 task sets)
      REPRO_SCALE=5 python examples/capacity_sizing.py  (tighter)
"""

from repro.analysis.capacity import find_min_capacity
from repro.analysis.sweep import run_replications
from repro.experiments.common import PaperSetup, replications

UTILIZATION = 0.3
SCHEDULERS = ("edf", "lsa", "ea-dvfs")


def main() -> None:
    setup = PaperSetup()
    n_sets = replications(3)
    seeds = range(n_sets)
    factory = setup.factory(UTILIZATION)

    print(
        f"minimum zero-miss capacity at U={UTILIZATION} "
        f"({n_sets} task sets, horizon {setup.horizon:g}):\n"
    )
    minima = {}
    for name in SCHEDULERS:

        def miss_fn(capacity: float, _name=name) -> float:
            run = run_replications(factory, _name, capacity, seeds)
            return run.metrics.pooled_miss_rate

        search = find_min_capacity(miss_fn, initial=20.0, rel_tol=0.02)
        minima[name] = search.min_capacity
        print(
            f"  {name:12s} Cmin = {search.min_capacity:8.1f} "
            f"({search.evaluations} simulations of the sweep)"
        )

    print(
        f"\n  Cmin(LSA) / Cmin(EA-DVFS) = "
        f"{minima['lsa'] / minima['ea-dvfs']:.2f}"
        f"   (paper's Table 1 at low utilization: 1.3 - 2.5)"
    )
    print(
        f"  Cmin(EDF) / Cmin(EA-DVFS) = "
        f"{minima['edf'] / minima['ea-dvfs']:.2f}"
        f"   (energy-oblivious EDF as an extra baseline)"
    )


if __name__ == "__main__":
    main()
