#!/usr/bin/env python
"""Offline design-time analysis and result export.

Before deploying a harvesting node, a designer wants to know — without
simulating — whether the workload is even feasible, how big the storage
must be at minimum, and then validate the paper's scheduler on it and
archive the results.  This example walks that pipeline:

1. generate a workload and check EDF timing feasibility;
2. check the long-run energy balance (full-speed vs. stretched demand);
3. bound the storage from below via the worst harvest deficit;
4. simulate EA-DVFS at 2x that bound with full tracing;
5. render the first stretch of the schedule as an ASCII Gantt chart and
   export the result (JSON) and trace (CSV) for external tooling.

Run:  python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.schedulability import (
    edf_schedulable,
    energy_feasibility,
    max_energy_deficit,
)
from repro.energy.storage import IdealStorage
from repro.experiments.common import PaperSetup
from repro.sched.registry import make_scheduler
from repro.serialization import save_result_json, trace_to_csv
from repro.sim.schedule_view import render_gantt
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig
from repro.sim.tracing import TraceKind

UTILIZATION = 0.4
SEED = 11
HORIZON = 10_000.0


def main() -> None:
    setup = PaperSetup()
    scale = setup.scale()
    source = setup.source(SEED)
    taskset = setup.taskset(SEED, UTILIZATION)

    # 1. Timing feasibility.
    print(f"workload: {taskset}")
    print(f"EDF schedulable: {edf_schedulable(taskset)}")

    # 2. Energy balance.
    fx = energy_feasibility(taskset, source, scale)
    print(
        f"harvest mean {fx.mean_harvest_power:.2f} vs full-speed demand "
        f"{fx.full_speed_demand:.2f} (stretched bound {fx.min_demand:.2f})"
    )

    # 3. Storage lower bound from the worst harvest trough.
    deficit = max_energy_deficit(source, fx.full_speed_demand, HORIZON)
    capacity = 2.0 * max(deficit, 1.0)
    print(f"worst harvest deficit {deficit:.1f} -> provisioning "
          f"capacity {capacity:.1f}")

    # 4. Validate with a fully-traced EA-DVFS simulation.
    simulator = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=IdealStorage(capacity=capacity),
        scheduler=make_scheduler("ea-dvfs", scale),
        predictor=setup.predictor(source),
        config=SimulationConfig(
            horizon=HORIZON,
            trace_kinds=(
                TraceKind.JOB_START,
                TraceKind.JOB_PREEMPT,
                TraceKind.JOB_COMPLETE,
                TraceKind.JOB_MISS,
                TraceKind.FREQ_CHANGE,
                TraceKind.STALL,
            ),
        ),
    )
    result = simulator.run()
    print()
    print(result.summary())

    # 5. Gantt of the first 200 time units + archival export.
    print()
    print(render_gantt(result.trace, t0=0.0, t1=200.0))
    out_dir = Path(tempfile.mkdtemp(prefix="repro_export_"))
    save_result_json(result, out_dir / "result.json")
    rows = trace_to_csv(result.trace, out_dir / "trace.csv")
    print(f"\nexported result.json and trace.csv ({rows} records) "
          f"to {out_dir}")


if __name__ == "__main__":
    main()
